//! Offline stand-in for the subset of the `proptest` 1.x API this
//! workspace uses. The build environment has no network access to a
//! crates registry, so the workspace points the `proptest` dependency
//! at this shim via a path dependency.
//!
//! Semantics: each `proptest!` test runs `ProptestConfig::cases`
//! generated cases from a **deterministic** per-test PRNG (seeded from
//! the test name), and `prop_assert*` delegates to `assert*`. There is
//! no shrinking and no failure persistence — a failing case panics
//! with the generated inputs visible in the assertion message.
//!
//! Provided surface (only what the workspace calls):
//! * [`Strategy`] with `prop_map`, `prop_filter_map`, `prop_recursive`,
//!   `boxed`; [`BoxedStrategy`]; [`Just`]; [`Union`]; [`any`] for
//!   `bool`; integer range strategies; tuple strategies up to arity 6
//! * [`collection::vec`], [`sample::select`]
//! * `proptest!`, `prop_oneof!`, `prop_assert!`, `prop_assert_eq!`,
//!   `prop_assert_ne!`; [`ProptestConfig::with_cases`]

#![forbid(unsafe_code)]

use std::marker::PhantomData;
use std::ops::Range;
use std::rc::Rc;

/// Runner configuration; only `cases` is honoured.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per `proptest!` test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic SplitMix64 PRNG driving value generation.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from an arbitrary label (e.g. a test name)
    /// so distinct tests explore distinct streams, reproducibly.
    pub fn deterministic(label: &str) -> Self {
        // FNV-1a over the label bytes.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next raw 64 bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: usize) -> usize {
        debug_assert!(bound > 0);
        (self.next_u64() % bound as u64) as usize
    }
}

/// A generator of values, mirroring `proptest::strategy::Strategy`.
///
/// Unlike the real crate there is no value tree / shrinking: a
/// strategy is just a cloneable recipe that draws one value per call.
pub trait Strategy: Clone {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Value) -> U + Clone,
    {
        Map { inner: self, f }
    }

    /// Maps through `f`, retrying generation whenever `f` returns
    /// `None`. `reason` is reported if generation never succeeds.
    fn prop_filter_map<U, F>(self, reason: &'static str, f: F) -> FilterMap<Self, F>
    where
        F: Fn(Self::Value) -> Option<U> + Clone,
    {
        FilterMap {
            inner: self,
            reason,
            f,
        }
    }

    /// Builds a recursive strategy: `self` generates leaves and
    /// `recurse` wraps a strategy for subtrees into one for trees.
    /// `depth` bounds the nesting; the size/branch hints are accepted
    /// for API compatibility but unused.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            let deeper = recurse(current).boxed();
            current = Union::new(vec![leaf.clone(), deeper]).boxed();
        }
        current
    }

    /// Erases the strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Rc::new(move |rng| self.generate(rng)))
    }
}

/// A type-erased, cheaply cloneable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U + Clone,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_filter_map`].
#[derive(Clone)]
pub struct FilterMap<S, F> {
    inner: S,
    reason: &'static str,
    f: F,
}

impl<S, U, F> Strategy for FilterMap<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> Option<U> + Clone,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        for _ in 0..10_000 {
            if let Some(v) = (self.f)(self.inner.generate(rng)) {
                return v;
            }
        }
        panic!("prop_filter_map rejected 10000 candidates: {}", self.reason)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between several strategies of one value type
/// (the engine behind `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over `arms`; must be non-empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.arms.len());
        self.arms[idx].generate(rng)
    }
}

/// Types with a canonical strategy, usable via [`any`].
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy returned by [`any`].
pub struct Any<A>(PhantomData<A>);

impl<A> Clone for Any<A> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;
    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

/// The canonical strategy for `A`, e.g. `any::<bool>()`.
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(PhantomData)
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, G);

/// A size specification for [`collection::vec`]: either an exact
/// length or a half-open range of lengths.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    max_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            min: n,
            max_exclusive: n + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max_exclusive: r.end,
        }
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    /// Strategy for `Vec<S::Value>` with length drawn from a range.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.max_exclusive - self.size.min;
            let len = self.size.min + if span > 1 { rng.below(span) } else { 0 };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates vectors of `element` values with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Sampling strategies (`prop::sample`).
pub mod sample {
    use super::{Strategy, TestRng};

    /// Strategy picking one element of a static slice.
    #[derive(Clone)]
    pub struct Select<T: 'static>(&'static [T]);

    impl<T: Clone + 'static> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0[rng.below(self.0.len())].clone()
        }
    }

    /// Picks uniformly from `values` (must be non-empty).
    pub fn select<T: Clone + 'static>(values: &'static [T]) -> Select<T> {
        assert!(!values.is_empty(), "sample::select on empty slice");
        Select(values)
    }
}

/// Uniform choice between strategy expressions with a common value
/// type. Weighted arms (`3 => strat`) are not supported.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Like `assert!`, inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Like `assert_eq!`, inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Like `assert_ne!`, inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Defines property tests: each `fn name(pat in strategy, ...) { .. }`
/// becomes a `#[test]`-able zero-argument function running
/// `ProptestConfig::cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr) $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for __case in 0..config.cases {
                    let _ = __case;
                    $(let $arg = $crate::Strategy::generate(&$strat, &mut rng);)+
                    $body
                }
            }
        )*
    };
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, Union,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_tuples_and_maps_generate_in_bounds() {
        let mut rng = crate::TestRng::deterministic("unit");
        let strat = (0i64..5, 0u32..3).prop_map(|(a, b)| a + i64::from(b));
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((0..7).contains(&v), "got {v}");
        }
    }

    #[test]
    fn oneof_and_select_cover_all_arms() {
        static WORDS: &[&str] = &["a", "b", "c"];
        let mut rng = crate::TestRng::deterministic("cover");
        let strat = prop_oneof![Just("x"), prop::sample::select(WORDS),];
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..100 {
            seen.insert(strat.generate(&mut rng));
        }
        assert!(seen.contains("x") && seen.contains("a"));
    }

    #[test]
    fn vec_exact_and_ranged_sizes() {
        let mut rng = crate::TestRng::deterministic("vec");
        let exact = prop::collection::vec(0i64..3, 2);
        let ranged = prop::collection::vec(0i64..3, 1..4);
        for _ in 0..50 {
            assert_eq!(exact.generate(&mut rng).len(), 2);
            let n = ranged.generate(&mut rng).len();
            assert!((1..4).contains(&n));
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Clone, Debug)]
        enum Tree {
            Leaf(i64),
            Node(Vec<Tree>),
        }
        let leaf = (0i64..4).prop_map(Tree::Leaf);
        let tree = leaf.prop_recursive(3, 24, 4, |inner| {
            prop::collection::vec(inner, 1..3).prop_map(Tree::Node)
        });
        let mut rng = crate::TestRng::deterministic("tree");
        let mut saw_node = false;
        let mut leaf_sum = 0i64;
        for _ in 0..100 {
            match tree.generate(&mut rng) {
                Tree::Node(children) => {
                    saw_node = true;
                    assert!(!children.is_empty());
                }
                Tree::Leaf(n) => leaf_sum += n,
            }
        }
        assert!(saw_node);
        assert!(leaf_sum > 0);
    }

    #[test]
    fn filter_map_retries() {
        let mut rng = crate::TestRng::deterministic("fm");
        let evens = (0i64..10).prop_filter_map("odd", |v| (v % 2 == 0).then_some(v));
        for _ in 0..100 {
            assert_eq!(evens.generate(&mut rng) % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The macro itself: patterns, multiple args, trailing comma.
        #[test]
        fn macro_binds_patterns((a, b) in (0i64..5, 0i64..5), flip in any::<bool>(),) {
            prop_assert!(a + b >= 0);
            prop_assert_eq!(flip & true, flip);
            prop_assert_ne!(a - 1, a);
        }
    }

    #[test]
    fn macro_generated_test_runs() {
        macro_binds_patterns();
    }
}
