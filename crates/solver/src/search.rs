//! DPLL-style search over the boolean structure of a condition.
//!
//! The NNF formula is explored depth-first: conjunctions extend the
//! current branch, disjunctions fork it. At each complete branch the
//! collected atom conjunction is handed to the theory solver
//! ([`crate::theory`]). Ground atoms are evaluated on the spot so
//! contradictory branches are cut before reaching the theory.
//!
//! This is lazy DNF enumeration with theory pruning — exponential in
//! the worst case (it is deciding SAT, after all) but linear on the
//! conjunctive conditions that dominate fauré workloads. A node budget
//! guards against pathological inputs.

use crate::error::SolverError;
use crate::nnf::{to_nnf, Nnf};
use crate::theory::check_conjunction;
use faure_ctable::{Assignment, Atom, CVarRegistry, Condition};
use std::collections::BTreeSet;

/// Default search budget (number of DFS nodes).
pub const DEFAULT_BUDGET: u64 = 50_000_000;

/// Is `cond` satisfiable for *some* assignment of its c-variables?
pub fn satisfiable(reg: &CVarRegistry, cond: &Condition) -> Result<bool, SolverError> {
    Ok(find_model(reg, cond)?.is_some())
}

/// Finds a satisfying assignment of the c-variables mentioned in
/// `cond`, or `None` if the condition is unsatisfiable.
pub fn find_model(reg: &CVarRegistry, cond: &Condition) -> Result<Option<Assignment>, SolverError> {
    find_model_budgeted(reg, cond, DEFAULT_BUDGET)
}

/// [`find_model`] with an explicit node budget.
pub fn find_model_budgeted(
    reg: &CVarRegistry,
    cond: &Condition,
    budget: u64,
) -> Result<Option<Assignment>, SolverError> {
    let nnf = to_nnf(cond);
    let mut stack: Vec<&Nnf> = vec![&nnf];
    let mut atoms: Vec<Atom> = Vec::new();
    let mut nodes = Budget {
        remaining: budget,
        budget,
    };
    dfs(reg, &mut stack, &mut atoms, &mut nodes)
}

/// Enumerates up to `limit` distinct **total** models of `cond` over
/// the c-variables it mentions, in lexicographic domain order.
///
/// Every mentioned variable must have a *finite* domain (open-domain
/// conditions have infinitely many models); otherwise
/// [`SolverError::OpenDomainArith`] is returned. The enumeration walks
/// the assignment space directly — intended for the paper's typical
/// question "under exactly which failure combinations does this
/// condition hold?", where the variables are a handful of `{0,1}` link
/// states. The walk aborts with [`SolverError::BudgetExceeded`] if the
/// assignment space exceeds `2^24`.
pub fn all_models(
    reg: &CVarRegistry,
    cond: &Condition,
    limit: usize,
) -> Result<Vec<Assignment>, SolverError> {
    let vars: Vec<_> = cond.cvars().into_iter().collect();
    let mut domains = Vec::with_capacity(vars.len());
    let mut space: u128 = 1;
    for &v in &vars {
        let members = reg
            .domain(v)
            .members()
            .ok_or_else(|| SolverError::OpenDomainArith {
                cvar: reg.name(v).to_owned(),
            })?;
        space = space.saturating_mul(members.len().max(1) as u128);
        domains.push(members);
    }
    const SPACE_CAP: u128 = 1 << 24;
    if space > SPACE_CAP {
        return Err(SolverError::BudgetExceeded {
            budget: SPACE_CAP as u64,
        });
    }
    if domains.iter().any(|d| d.is_empty()) {
        return Ok(Vec::new());
    }

    let mut models = Vec::new();
    let mut idx = vec![0usize; vars.len()];
    loop {
        let assignment =
            Assignment::from_pairs((0..vars.len()).map(|i| (vars[i], domains[i][idx[i]].clone())));
        if cond.eval(&assignment.lookup()) == Some(true) {
            models.push(assignment);
            if models.len() >= limit {
                break;
            }
        }
        // Odometer.
        let mut carry = true;
        for i in (0..idx.len()).rev() {
            if !carry {
                break;
            }
            idx[i] += 1;
            if idx[i] < domains[i].len() {
                carry = false;
            } else {
                idx[i] = 0;
            }
        }
        if carry {
            break;
        }
    }
    Ok(models)
}

struct Budget {
    remaining: u64,
    budget: u64,
}

impl Budget {
    fn tick(&mut self) -> Result<(), SolverError> {
        if self.remaining == 0 {
            return Err(SolverError::BudgetExceeded {
                budget: self.budget,
            });
        }
        self.remaining -= 1;
        Ok(())
    }
}

/// Invariant: `dfs` restores `stack` and `atoms` to their entry state
/// before returning, so `Or` branches explore independent extensions.
fn dfs(
    reg: &CVarRegistry,
    stack: &mut Vec<&Nnf>,
    atoms: &mut Vec<Atom>,
    nodes: &mut Budget,
) -> Result<Option<Assignment>, SolverError> {
    nodes.tick()?;
    let Some(node) = stack.pop() else {
        return check_conjunction(reg, atoms);
    };
    let out = match node {
        Nnf::True => dfs(reg, stack, atoms, nodes),
        Nnf::False => Ok(None),
        Nnf::Atom(a) => {
            let mut vars = BTreeSet::new();
            a.cvars(&mut vars);
            if vars.is_empty() {
                // Ground atom: decide immediately.
                match a.eval(&|_| unreachable!("ground atom")) {
                    Some(true) => dfs(reg, stack, atoms, nodes),
                    Some(false) | None => Ok(None),
                }
            } else {
                atoms.push(a.clone());
                let r = dfs(reg, stack, atoms, nodes);
                atoms.pop();
                r
            }
        }
        Nnf::And(cs) => {
            for c in cs {
                stack.push(c);
            }
            let r = dfs(reg, stack, atoms, nodes);
            stack.truncate(stack.len() - cs.len());
            r
        }
        Nnf::Or(cs) => {
            let mut found = Ok(None);
            for c in cs {
                stack.push(c);
                let r = dfs(reg, stack, atoms, nodes);
                stack.pop();
                match r {
                    Ok(None) => {}
                    other => {
                        found = other;
                        break;
                    }
                }
            }
            found
        }
    };
    stack.push(node);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use faure_ctable::{CmpOp, Condition, Domain, LinExpr, Term};

    #[test]
    fn true_and_false() {
        let reg = CVarRegistry::new();
        assert!(satisfiable(&reg, &Condition::True).unwrap());
        assert!(!satisfiable(&reg, &Condition::False).unwrap());
    }

    #[test]
    fn table2_row1_condition() {
        // x̄ = [ABC] ∨ x̄ = [ADEC] with dom(x̄) = both paths: satisfiable.
        let mut reg = CVarRegistry::new();
        let abc = faure_ctable::Const::path(&["A", "B", "C"]);
        let adec = faure_ctable::Const::path(&["A", "D", "E", "C"]);
        let x = reg.fresh("x", Domain::Consts(vec![abc.clone(), adec.clone()]));
        let cond = Condition::eq(Term::Var(x), Term::Const(abc))
            .or(Condition::eq(Term::Var(x), Term::Const(adec)));
        assert!(satisfiable(&reg, &cond).unwrap());
        // Conjoined with x̄ = [ABE] (not in the domain): unsat.
        let abe = faure_ctable::Const::path(&["A", "B", "E"]);
        let bad = cond.and(Condition::eq(Term::Var(x), Term::Const(abe)));
        assert!(!satisfiable(&reg, &bad).unwrap());
    }

    #[test]
    fn ground_atoms_short_circuit() {
        let reg = CVarRegistry::new();
        let c = Condition::eq(Term::int(1), Term::int(1))
            .and(Condition::ne(Term::sym("a"), Term::sym("b")));
        assert!(satisfiable(&reg, &c).unwrap());
        let c2 = Condition::eq(Term::int(1), Term::int(2));
        assert!(!satisfiable(&reg, &c2).unwrap());
    }

    #[test]
    fn disjunction_of_contradictions() {
        let mut reg = CVarRegistry::new();
        let x = reg.fresh("x", Domain::Bool01);
        let contradiction = Condition::eq(Term::Var(x), Term::int(0))
            .and(Condition::eq(Term::Var(x), Term::int(1)));
        let both = contradiction.clone().or(contradiction);
        assert!(!satisfiable(&reg, &both).unwrap());
    }

    #[test]
    fn negation_of_linear() {
        let mut reg = CVarRegistry::new();
        let x = reg.fresh("x", Domain::Bool01);
        let y = reg.fresh("y", Domain::Bool01);
        // ¬(x̄ + ȳ ≥ 1) ⇒ x̄ + ȳ < 1 ⇒ both zero.
        let c = Condition::cmp(LinExpr::sum([x, y]), CmpOp::Ge, LinExpr::constant(1)).negate();
        let m = find_model(&reg, &c).unwrap().unwrap();
        assert_eq!(m.get(x).unwrap().as_int(), Some(0));
        assert_eq!(m.get(y).unwrap().as_int(), Some(0));
    }

    #[test]
    fn model_satisfies_condition() {
        let mut reg = CVarRegistry::new();
        let x = reg.fresh("x", Domain::Bool01);
        let y = reg.fresh("y", Domain::Bool01);
        let z = reg.fresh("z", Domain::Bool01);
        let c = Condition::cmp(LinExpr::sum([x, y, z]), CmpOp::Eq, LinExpr::constant(1))
            .and(Condition::eq(Term::Var(y), Term::int(0)))
            .or(Condition::eq(Term::Var(z), Term::int(1)).negate());
        let m = find_model(&reg, &c).unwrap().unwrap();
        // Evaluating the condition under the returned model must hold.
        assert_eq!(c.eval(&m.lookup()), Some(true));
    }

    #[test]
    fn all_models_enumerates_failure_scenarios() {
        let mut reg = CVarRegistry::new();
        let x = reg.fresh("x", Domain::Bool01);
        let y = reg.fresh("y", Domain::Bool01);
        let z = reg.fresh("z", Domain::Bool01);
        // Exactly one link up: 3 scenarios.
        let c = Condition::cmp(LinExpr::sum([x, y, z]), CmpOp::Eq, LinExpr::constant(1));
        let models = all_models(&reg, &c, 100).unwrap();
        assert_eq!(models.len(), 3);
        for m in &models {
            assert_eq!(c.eval(&m.lookup()), Some(true));
        }
        // Limit respected.
        assert_eq!(all_models(&reg, &c, 2).unwrap().len(), 2);
        // Unsat → empty.
        let unsat = Condition::cmp(LinExpr::sum([x]), CmpOp::Eq, LinExpr::constant(5));
        assert!(all_models(&reg, &unsat, 10).unwrap().is_empty());
    }

    #[test]
    fn all_models_rejects_open_domains() {
        let mut reg = CVarRegistry::new();
        let o = reg.fresh("o", Domain::Open);
        let c = Condition::ne(Term::Var(o), Term::int(1));
        assert!(matches!(
            all_models(&reg, &c, 10),
            Err(SolverError::OpenDomainArith { .. })
        ));
    }

    #[test]
    fn budget_exceeded_reported() {
        let mut reg = CVarRegistry::new();
        let x = reg.fresh("x", Domain::Bool01);
        let c =
            Condition::eq(Term::Var(x), Term::int(0)).or(Condition::eq(Term::Var(x), Term::int(1)));
        assert!(matches!(
            find_model_budgeted(&reg, &c, 1),
            Err(SolverError::BudgetExceeded { .. })
        ));
    }
}
