//! Differential testing of incremental maintenance (ISSUE 8).
//!
//! The incremental layer (`faure_core::engine`'s `Delta` /
//! `MaterializedState` / `apply`) must be invisible in results: a
//! standing fixpoint maintained through any stream of EDB deltas has to
//! match, bit for bit (rows plus canonicalized conditions), the batch
//! re-evaluation of the §5-updated database. The §5 Levy–Sagiv rewrite
//! (`faure_core::update::apply_to_database`) is the oracle: each delta
//! is mirrored as an `Update` on a copy of the database, which is then
//! fully re-evaluated from scratch.
//!
//! Programs and databases come from the shared corpus
//! (`faure_tests::corpus`) — linear and non-linear recursion,
//! stratified negation over EDB and IDB, comparison pushdown,
//! c-variable-only comparisons — so the whole planner/engine surface is
//! behind the differential. Deltas mix constant-row insertions with
//! §5 deletion patterns (exact rows and wildcard columns, including
//! patterns that strike c-variable cells and *weaken* conditions
//! rather than drop rows).
//!
//! Every case runs at one and two worker threads and the maintained
//! states must agree with the oracle — and with each other — at both.

use faure_core::engine::canonicalize;
use faure_core::{apply_to_database, Delta, Engine, EvalOptions, PreparedProgram, Program, Update};
use faure_ctable::{Atom, CTuple, CmpOp, Condition, Const, Database, Term};
use faure_tests::corpus::{arb_db, arb_program};
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::sync::Arc;

/// One randomly generated EDB change batch, in oracle-ready form.
#[derive(Clone, Debug)]
enum Change {
    InsertE(i64, i64),
    InsertB(i64),
    /// Exact-row deletion on E.
    DeleteE(i64, i64),
    /// Wildcard-column deletion on E (`None` = free column).
    DeleteEWild(Option<i64>, Option<i64>),
    DeleteB(i64),
}

fn arb_change() -> impl Strategy<Value = Change> {
    let k = 0i64..3;
    // The shim's `prop_oneof!` is unweighted; the insert arm appears
    // twice to skew the stream toward growth (richer fixpoints).
    prop_oneof![
        (k.clone(), k.clone()).prop_map(|(a, b)| Change::InsertE(a, b)),
        (k.clone(), k.clone()).prop_map(|(a, b)| Change::InsertE(a, b)),
        k.clone().prop_map(Change::InsertB),
        (k.clone(), k.clone()).prop_map(|(a, b)| Change::DeleteE(a, b)),
        (k.clone(), any::<bool>()).prop_map(|(a, first)| if first {
            Change::DeleteEWild(Some(a), None)
        } else {
            Change::DeleteEWild(None, Some(a))
        }),
        k.prop_map(Change::DeleteB),
    ]
}

/// A stream of delta batches, each with 1–3 changes.
fn arb_stream() -> impl Strategy<Value = Vec<Vec<Change>>> {
    prop::collection::vec(prop::collection::vec(arb_change(), 1..4), 1..4)
}

/// Builds the engine-facing `Delta` and the §5 oracle `Update`s for one
/// batch. `Delta` applies all deletions before all insertions, so the
/// oracle mirrors that order.
fn build_delta(batch: &[Change]) -> (Delta, Vec<Update>) {
    let mut delta = Delta::new();
    let mut del_e = Update {
        relation: "E".into(),
        insertions: vec![],
        deletions: vec![],
    };
    let mut del_b = Update {
        relation: "B".into(),
        insertions: vec![],
        deletions: vec![],
    };
    let mut ins_e = del_e.clone();
    let mut ins_b = del_b.clone();
    for c in batch {
        match c {
            Change::InsertE(a, b) => {
                delta.push_insert_fact("E", [Const::Int(*a), Const::Int(*b)]);
                ins_e.insertions.push(vec![Const::Int(*a), Const::Int(*b)]);
            }
            Change::InsertB(x) => {
                delta.push_insert_fact("B", [Const::Int(*x)]);
                ins_b.insertions.push(vec![Const::Int(*x)]);
            }
            Change::DeleteE(a, b) => {
                let pat = faure_core::DeletePattern::exact([Const::Int(*a), Const::Int(*b)]);
                delta.push_delete("E", pat.clone());
                del_e.deletions.push(pat);
            }
            Change::DeleteEWild(a, b) => {
                let pat = faure_core::DeletePattern {
                    cols: vec![a.map(Const::Int), b.map(Const::Int)],
                };
                delta.push_delete("E", pat.clone());
                del_e.deletions.push(pat);
            }
            Change::DeleteB(x) => {
                let pat = faure_core::DeletePattern::exact([Const::Int(*x)]);
                delta.push_delete("B", pat.clone());
                del_b.deletions.push(pat);
            }
        }
    }
    (delta, vec![del_e, del_b, ins_e, ins_b])
}

/// Reorients symmetric comparisons (`=`, `≠`) into one canonical
/// operand order: the storage layer's pooled DNF representation may
/// store `x̄ = 1` as `1 = x̄` relative to a raw input condition. Applied
/// to both sides of every comparison.
fn orient(c: Condition) -> Condition {
    match c {
        Condition::Atom(a)
            if matches!(a.op, CmpOp::Eq | CmpOp::Ne)
                && format!("{:?}", a.lhs) > format!("{:?}", a.rhs) =>
        {
            Condition::Atom(Atom {
                lhs: a.rhs,
                op: a.op,
                rhs: a.lhs,
            })
        }
        Condition::Not(inner) => Condition::Not(Arc::new(orient((*inner).clone()))),
        Condition::And(cs) => Condition::And(Arc::new(cs.iter().cloned().map(orient).collect())),
        Condition::Or(cs) => Condition::Or(Arc::new(cs.iter().cloned().map(orient).collect())),
        other => other,
    }
}

fn canon(c: &Condition) -> Condition {
    canonicalize(orient(canonicalize(c.clone())))
}

/// Order-independent snapshot of every IDB predicate plus the
/// maintained EDB relations: terms + canonicalized conditions.
/// Incremental maintenance appends re-derived rows at the table's end,
/// so row *order* is not part of the contract — row *sets* and their
/// conditions are.
fn snapshot_rows(rows: &[CTuple], pred: &str) -> BTreeSet<String> {
    rows.iter()
        .map(|t| format!("{pred}{:?} | {:?}", t.terms, canon(&t.cond)))
        .collect()
}

fn state_snapshot(
    prepared: &PreparedProgram,
    state: &faure_core::MaterializedState,
    program: &Program,
    edb: &[&str],
) -> BTreeSet<String> {
    let _ = prepared;
    let mut snap = BTreeSet::new();
    for pred in program.idb_predicates() {
        let rel = state
            .relation(pred)
            .expect("maintained IDB relation exists");
        snap.extend(snapshot_rows(&rel.tuples, pred));
    }
    for pred in edb {
        if let Some(rel) = state.relation(pred) {
            snap.extend(snapshot_rows(&rel.tuples, pred));
        }
    }
    snap
}

fn oracle_snapshot(
    out: &faure_core::EvalOutput,
    oracle_db: &Database,
    program: &Program,
    edb: &[&str],
) -> BTreeSet<String> {
    let mut snap = BTreeSet::new();
    for pred in program.idb_predicates() {
        let rel = out.relation(pred).expect("IDB relation exists");
        snap.extend(snapshot_rows(&rel.tuples, pred));
    }
    for pred in edb {
        if let Some(rel) = oracle_db.relation(pred) {
            // The maintained state stores EDB rows through `Table`
            // (deduplicated, conditions normalised to pooled DNF); the
            // oracle database keeps whatever `apply_to_database` wrote
            // (e.g. a weakened `ψ ∧ ¬μ` stays a raw `Not`). Round-trip
            // through a `Table` so both sides compare in the same
            // representation.
            let norm = faure_storage::Table::from_relation(rel).to_relation();
            snap.extend(snapshot_rows(&norm.tuples, pred));
        }
    }
    snap
}

/// Drives one (db, program, stream) instance at a fixed thread count,
/// checking the maintained state against the §5-update + full-re-eval
/// oracle after every batch. Returns the per-step snapshots so callers
/// can also compare across thread counts.
fn run_stream(
    program: &Program,
    db: &Database,
    stream: &[Vec<Change>],
    threads: usize,
) -> Vec<BTreeSet<String>> {
    let engine = Engine::with_options(EvalOptions {
        threads,
        ..Default::default()
    });
    let prepared = engine.prepare(program).expect("corpus programs prepare");
    let mut state = prepared.materialize(db).expect("materialize");
    let mut oracle_db = db.clone();
    let edb = ["E", "B"];

    // The fresh materialization must already agree with a plain run.
    let full = prepared.run(&oracle_db).expect("full eval");
    let got = state_snapshot(&prepared, &state, program, &edb);
    let want = oracle_snapshot(&full, &oracle_db, program, &edb);
    assert_eq!(
        got, want,
        "fresh materialization diverged (threads={threads})"
    );

    let mut steps = Vec::new();
    for (i, batch) in stream.iter().enumerate() {
        let (delta, updates) = build_delta(batch);
        prepared.apply(&mut state, delta).expect("apply delta");
        for u in &updates {
            apply_to_database(u, &mut oracle_db).expect("oracle update");
        }
        let full = prepared.run(&oracle_db).expect("full re-eval");
        let got = state_snapshot(&prepared, &state, program, &edb);
        let want = oracle_snapshot(&full, &oracle_db, program, &edb);
        assert_eq!(
            got, want,
            "step {i}: maintained state diverged from §5 update + full \
             re-eval (threads={threads}, batch={batch:?})"
        );
        steps.push(got);
    }
    steps
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Tentpole acceptance: maintained fixpoints equal the §5-rewrite
    /// oracle after every delta, bit-identically, at one and two
    /// threads — and the two thread counts agree with each other.
    #[test]
    fn incremental_matches_update_oracle(
        db in arb_db(),
        program in arb_program(),
        stream in arb_stream(),
    ) {
        let serial = run_stream(&program, &db, &stream, 1);
        let parallel = run_stream(&program, &db, &stream, 2);
        prop_assert_eq!(serial, parallel);
    }

    /// Satellite 1: the §5 Levy–Sagiv rewrite itself, cross-checked
    /// through `Delta::from_update` — applying an update through the
    /// incremental engine and through `apply_to_database` + re-eval
    /// must coincide on the shared corpus.
    #[test]
    fn update_rewrite_matches_incremental_apply(
        db in arb_db(),
        program in arb_program(),
        ins in prop::collection::vec((0i64..3, 0i64..3), 0..3),
        del in prop::collection::vec((0i64..3, 0i64..3), 0..3),
    ) {
        let update = Update {
            relation: "E".into(),
            insertions: ins
                .into_iter()
                .map(|(a, b)| vec![Const::Int(a), Const::Int(b)])
                .collect(),
            deletions: del
                .into_iter()
                .map(|(a, b)| faure_core::DeletePattern::exact([Const::Int(a), Const::Int(b)]))
                .collect(),
        };
        let prepared = Engine::new().prepare(&program).expect("prepare");
        let mut state = prepared.materialize(&db).expect("materialize");
        prepared
            .apply(&mut state, Delta::from_update(&update))
            .expect("apply");

        let mut oracle_db = db.clone();
        apply_to_database(&update, &mut oracle_db).expect("§5 rewrite");
        let full = prepared.run(&oracle_db).expect("full re-eval");

        let edb = ["E", "B"];
        prop_assert_eq!(
            state_snapshot(&prepared, &state, &program, &edb),
            oracle_snapshot(&full, &oracle_db, &program, &edb)
        );
    }
}

/// Deleting every row of E (wildcard on one column at a time) and
/// re-inserting a small graph must leave the maintained state exactly
/// where a fresh evaluation of that graph lands — the "state is fully
/// reversible" smoke check, deterministic rather than property-based.
#[test]
fn full_teardown_and_rebuild_matches_fresh_state() {
    let mut db = Database::new();
    db.create_relation(faure_ctable::Schema::new("E", &["a", "b"]))
        .unwrap();
    db.create_relation(faure_ctable::Schema::new("B", &["x"]))
        .unwrap();
    for (a, b) in [(0, 1), (1, 2), (2, 0)] {
        db.insert("E", CTuple::new([Term::int(a), Term::int(b)]))
            .unwrap();
    }
    let program =
        faure_core::parse_program("R(a, b) :- E(a, b).\nR(a, c) :- E(a, b), R(b, c).\n").unwrap();
    let prepared = Engine::new().prepare(&program).unwrap();
    let mut state = prepared.materialize(&db).unwrap();

    // Tear the cycle down column by column…
    let mut d = Delta::new();
    for a in 0..3 {
        d.push_delete(
            "E",
            faure_core::DeletePattern {
                cols: vec![Some(Const::Int(a)), None],
            },
        );
    }
    prepared.apply(&mut state, d).unwrap();
    assert_eq!(state.relation("R").unwrap().len(), 0);
    assert_eq!(state.relation("E").unwrap().len(), 0);

    // …and rebuild a different graph.
    let mut d = Delta::new();
    for (a, b) in [(5, 6), (6, 7)] {
        d.push_insert_fact("E", [Const::Int(a), Const::Int(b)]);
    }
    prepared.apply(&mut state, d).unwrap();

    let mut fresh_db = Database::new();
    fresh_db
        .create_relation(faure_ctable::Schema::new("E", &["a", "b"]))
        .unwrap();
    for (a, b) in [(5, 6), (6, 7)] {
        fresh_db
            .insert("E", CTuple::new([Term::int(a), Term::int(b)]))
            .unwrap();
    }
    let fresh = prepared.run(&fresh_db).unwrap();
    assert_eq!(
        snapshot_rows(&state.relation("R").unwrap().tuples, "R"),
        snapshot_rows(&fresh.relation("R").unwrap().tuples, "R")
    );
    assert_eq!(state.relation("R").unwrap().len(), 3);
}

#[test]
#[ignore = "debug harness: replays the deterministic proptest stream and dumps the first divergent case"]
fn debug_dump_divergence() {
    use proptest::Strategy as _;
    let mut rng = proptest::TestRng::deterministic(
        "incremental_differential::update_rewrite_matches_incremental_apply",
    );
    for case in 0..48 {
        let db = arb_db().generate(&mut rng);
        let program = arb_program().generate(&mut rng);
        let ins = prop::collection::vec((0i64..3, 0i64..3), 0..3).generate(&mut rng);
        let del = prop::collection::vec((0i64..3, 0i64..3), 0..3).generate(&mut rng);
        let update = Update {
            relation: "E".into(),
            insertions: ins
                .iter()
                .map(|(a, b)| vec![Const::Int(*a), Const::Int(*b)])
                .collect(),
            deletions: del
                .iter()
                .map(|(a, b)| faure_core::DeletePattern::exact([Const::Int(*a), Const::Int(*b)]))
                .collect(),
        };
        let prepared = Engine::new().prepare(&program).expect("prepare");
        let mut state = prepared.materialize(&db).expect("materialize");
        prepared
            .apply(&mut state, Delta::from_update(&update))
            .expect("apply");
        let mut oracle_db = db.clone();
        apply_to_database(&update, &mut oracle_db).expect("§5 rewrite");
        let full = prepared.run(&oracle_db).expect("full re-eval");
        let edb = ["E", "B"];
        let got = state_snapshot(&prepared, &state, &program, &edb);
        let want = oracle_snapshot(&full, &oracle_db, &program, &edb);
        if got != want {
            eprintln!("=== case {case} diverged ===");
            eprintln!("--- program ---\n{program}");
            eprintln!("--- db ---\n{db:?}");
            eprintln!("--- ins {ins:?} del {del:?}");
            eprintln!("--- only in state ---");
            for s in got.difference(&want) {
                eprintln!("  {s}");
            }
            eprintln!("--- only in oracle ---");
            for s in want.difference(&got) {
                eprintln!("  {s}");
            }
            panic!("case {case} diverged");
        }
    }
    eprintln!("no divergence in 48 cases?!");
}
