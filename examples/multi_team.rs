//! Relative-complete verification in a multi-team enterprise (paper §5).
//!
//! A network is managed by a traffic-engineering team (load balancers,
//! policy `C_lb`) and a security team (firewalls, policy `C_s`). A
//! separate verification team must assure two network-wide targets
//! after a configuration change:
//!
//! * `T1` — Mkt traffic to the critical server passes a firewall;
//! * `T2` — R&D port-7000 traffic passes a load balancer.
//!
//! The verifier climbs the information ladder:
//!
//! 1. **category (i)** — knowing only the constraint definitions,
//!    prove subsumption by the team policies: works for `T1`, returns
//!    *unknown* for `T2`;
//! 2. **category (ii)** — additionally knowing the update (Listing 4:
//!    add load balancing for R&D→GS, drop it for Mkt→CS), rewrite `T2`
//!    through the update and retry: `T2` is now proven;
//! 3. **direct** — with the full state, evaluate the panic query and
//!    extract concrete violation witnesses.
//!
//! Run with: `cargo run -p faure-examples --bin multi_team`

use faure_core::apply_to_database;
use faure_net::enterprise;
use faure_verify::{verify, Constraint};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let known = vec![
        Constraint::new("C_lb", enterprise::c_lb())?,
        Constraint::new("C_s", enterprise::c_s())?,
    ];
    let t1 = Constraint::new("T1", enterprise::t1())?;
    let t2 = Constraint::new("T2", enterprise::t2())?;
    let reg = enterprise::constraint_registry();
    let update = enterprise::listing4_update();

    println!("team policies known to hold:");
    for c in &known {
        print!("{c}");
    }
    println!("\ntargets to verify:\n{t1}{t2}");

    // --- category (i): constraints only --------------------------------
    println!("--- level 1: constraint definitions only ---");
    for target in [&t1, &t2] {
        let report = verify(&known, target, None, None, &reg)?;
        println!("{report}");
    }

    // --- category (ii): the update becomes known ------------------------
    println!("\n--- level 2: the update is also known ---");
    println!("update: insert Lb(R&D, GS); delete Lb(Mkt, CS)   (Listing 4)");
    for target in [&t1, &t2] {
        let report = verify(&known, target, Some(&update), None, &reg)?;
        println!("{report}");
    }

    // --- direct: full state available ------------------------------------
    println!("\n--- level 3: full post-update state available ---");
    let (mut db, _) = enterprise::compliant_net();
    apply_to_database(&update, &mut db)?;
    for target in [&t1, &t2] {
        let report = verify(&known, target, Some(&update), Some(&db), &reg)?;
        println!("{report}");
    }

    // And a state where direct checking *finds* a violation.
    println!("\n--- direct check on a broken state ---");
    let (bad, _) = enterprise::t2_violating_net();
    let report = verify(&known, &t2, None, Some(&bad), &reg)?;
    println!("{report}");
    for v in &report.violations {
        println!("  {}", v.display(&reg));
    }

    Ok(())
}
