//! Condition simplification — the paper's evaluation phase 3.
//!
//! [`simplify`] performs two layers of cleanup:
//!
//! 1. **structural**: constant folding, flattening, deduplication of
//!    identical children, ground-atom evaluation;
//! 2. **solver-backed** (optional, via [`simplify_pruned`]): removal of
//!    unsatisfiable `Or` branches and detection of globally
//!    valid/contradictory conditions.
//!
//! Structural simplification never calls the solver and is safe to run
//! eagerly during evaluation; the solver-backed pass is what the paper
//! describes as "invoking Z3 to remove tuples with contradictory
//! conditions" (plus a validity check that turns always-true conditions
//! into the empty condition).

use crate::error::SolverError;
use crate::search::satisfiable;
use faure_ctable::{CVarRegistry, Condition};
use std::collections::BTreeSet;

/// Structurally simplifies a condition (no solver calls).
///
/// Guarantees: the result is logically equivalent and no larger (by
/// [`Condition::size`]) than the input, modulo flattening.
pub fn simplify(cond: &Condition) -> Condition {
    match cond {
        Condition::True | Condition::False => cond.clone(),
        Condition::Atom(a) => {
            let mut vars = BTreeSet::new();
            a.cvars(&mut vars);
            if vars.is_empty() {
                match a.eval(&|_| unreachable!("ground atom")) {
                    Some(true) => Condition::True,
                    Some(false) | None => Condition::False,
                }
            } else {
                cond.clone()
            }
        }
        Condition::Not(inner) => simplify(inner).negate(),
        Condition::And(cs) => {
            let mut out: Vec<Condition> = Vec::with_capacity(cs.len());
            for c in cs.iter() {
                match simplify(c) {
                    Condition::True => {}
                    Condition::False => return Condition::False,
                    Condition::And(nested) => {
                        for n in Condition::take_children(nested) {
                            if !out.contains(&n) {
                                out.push(n);
                            }
                        }
                    }
                    other => {
                        if !out.contains(&other) {
                            out.push(other);
                        }
                    }
                }
            }
            match out.len() {
                0 => Condition::True,
                1 => out.pop().expect("len checked"),
                _ => Condition::conj(out),
            }
        }
        Condition::Or(cs) => {
            let mut out: Vec<Condition> = Vec::with_capacity(cs.len());
            for c in cs.iter() {
                match simplify(c) {
                    Condition::False => {}
                    Condition::True => return Condition::True,
                    Condition::Or(nested) => {
                        for n in Condition::take_children(nested) {
                            if !out.contains(&n) {
                                out.push(n);
                            }
                        }
                    }
                    other => {
                        if !out.contains(&other) {
                            out.push(other);
                        }
                    }
                }
            }
            match out.len() {
                0 => Condition::False,
                1 => out.pop().expect("len checked"),
                _ => Condition::disj(out),
            }
        }
    }
}

/// Conditions larger than this skip the validity check and the
/// per-branch pruning in [`simplify_pruned`]: checking *validity*
/// negates the condition, which turns a wide disjunction into a wide
/// conjunction whose DNF exploration is exponential. Satisfiability of
/// the condition itself stays cheap (first satisfiable branch wins).
pub const VALIDITY_SIZE_LIMIT: usize = 128;

/// Solver-backed simplification: structural cleanup, then
///
/// * `False` if the whole condition is unsatisfiable;
/// * `True` if its negation is unsatisfiable (the condition is valid);
/// * otherwise, the condition with unsatisfiable top-level `Or`
///   branches removed.
///
/// Best-effort on oversized inputs: conditions above
/// [`VALIDITY_SIZE_LIMIT`] only get the (cheap) satisfiability check,
/// and a search-budget overrun on any check degrades to returning the
/// structurally simplified condition — always sound, since keeping a
/// row with an unverified condition never loses answers.
pub fn simplify_pruned(reg: &CVarRegistry, cond: &Condition) -> Result<Condition, SolverError> {
    let s = simplify(cond);
    match &s {
        Condition::True | Condition::False => return Ok(s),
        _ => {}
    }
    match satisfiable(reg, &s) {
        Ok(true) => {}
        Ok(false) => return Ok(Condition::False),
        Err(SolverError::BudgetExceeded { .. }) => return Ok(s),
        Err(e) => return Err(e),
    }
    if s.size() > VALIDITY_SIZE_LIMIT {
        return Ok(s);
    }
    match satisfiable(reg, &s.clone().negate()) {
        Ok(true) => {}
        Ok(false) => return Ok(Condition::True),
        Err(SolverError::BudgetExceeded { .. }) => return Ok(s),
        Err(e) => return Err(e),
    }
    if let Condition::Or(branches) = &s {
        let mut kept = Vec::with_capacity(branches.len());
        for b in branches.iter() {
            if satisfiable(reg, b)? {
                kept.push(b.clone());
            }
        }
        if kept.len() == 1 {
            return Ok(kept.pop().expect("len checked"));
        }
        if kept.len() != branches.len() {
            return Ok(Condition::disj(kept));
        }
    }
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use faure_ctable::{CmpOp, Condition, Domain, LinExpr, Term};

    #[test]
    fn folds_ground_atoms() {
        assert_eq!(
            simplify(&Condition::eq(Term::int(1), Term::int(1))),
            Condition::True
        );
        assert_eq!(
            simplify(&Condition::eq(Term::sym("a"), Term::sym("b"))),
            Condition::False
        );
    }

    #[test]
    fn dedupes_and_flattens() {
        let mut reg = CVarRegistry::new();
        let x = reg.fresh("x", Domain::Bool01);
        let a = Condition::eq(Term::Var(x), Term::int(1));
        let c = Condition::conj(vec![
            a.clone(),
            Condition::conj(vec![a.clone(), Condition::True]),
        ]);
        assert_eq!(simplify(&c), a);
    }

    #[test]
    fn and_false_collapses() {
        let mut reg = CVarRegistry::new();
        let x = reg.fresh("x", Domain::Bool01);
        let c = Condition::eq(Term::Var(x), Term::int(1))
            .and(Condition::eq(Term::int(0), Term::int(1)));
        assert_eq!(simplify(&c), Condition::False);
    }

    #[test]
    fn pruned_detects_unsat() {
        let mut reg = CVarRegistry::new();
        let x = reg.fresh("x", Domain::Bool01);
        let c = Condition::eq(Term::Var(x), Term::int(0))
            .and(Condition::eq(Term::Var(x), Term::int(1)));
        assert_eq!(simplify_pruned(&reg, &c).unwrap(), Condition::False);
    }

    #[test]
    fn pruned_detects_valid() {
        let mut reg = CVarRegistry::new();
        let x = reg.fresh("x", Domain::Bool01);
        // x̄ = 0 ∨ x̄ = 1 over {0,1} is valid.
        let c =
            Condition::eq(Term::Var(x), Term::int(0)).or(Condition::eq(Term::Var(x), Term::int(1)));
        assert_eq!(simplify_pruned(&reg, &c).unwrap(), Condition::True);
    }

    #[test]
    fn pruned_drops_unsat_branches() {
        let mut reg = CVarRegistry::new();
        let x = reg.fresh("x", Domain::Bool01);
        let y = reg.fresh("y", Domain::Bool01);
        let live = Condition::eq(Term::Var(x), Term::int(1));
        let dead = Condition::cmp(LinExpr::sum([x, y]), CmpOp::Gt, LinExpr::constant(2));
        // live ∨ dead — but `dead ∨ live` isn't valid, so branches stay split.
        let c = live
            .clone()
            .or(dead)
            .and(Condition::eq(Term::Var(y), Term::int(0)));
        // Note: top level is And; simplification keeps it; just check sat-ness.
        let got = simplify_pruned(&reg, &c).unwrap();
        assert_ne!(got, Condition::False);
        // A pure Or with a dead branch gets pruned down to the live one —
        // unless the live one alone is valid; pick one that is not.
        let or_case = Condition::eq(Term::Var(x), Term::int(1)).or(Condition::cmp(
            LinExpr::sum([x, y]),
            CmpOp::Gt,
            LinExpr::constant(2),
        ));
        assert_eq!(
            simplify_pruned(&reg, &or_case).unwrap(),
            Condition::eq(Term::Var(x), Term::int(1))
        );
    }

    #[test]
    fn simplify_preserves_equivalence() {
        let mut reg = CVarRegistry::new();
        let x = reg.fresh("x", Domain::Bool01);
        let y = reg.fresh("y", Domain::Bool01);
        let c = Condition::eq(Term::Var(x), Term::int(1))
            .and(Condition::eq(Term::int(2), Term::int(2)))
            .or(Condition::eq(Term::Var(y), Term::int(0)).and(Condition::False));
        let s = simplify(&c);
        assert!(crate::equivalent(&reg, &c, &s).unwrap());
    }
}
