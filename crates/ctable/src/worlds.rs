//! Possible-world enumeration.
//!
//! A c-table database denotes a set of ordinary databases, one per
//! assignment of its c-variables. This module enumerates those worlds
//! exhaustively (for finite domains), producing [`GroundDatabase`]s.
//!
//! Enumeration is exponential by nature and exists as the **ground
//! truth** for loss-less modeling: a fauré-log query answered on the
//! c-table must agree with running the corresponding pure-datalog query
//! in every world. The test suites rely on this module heavily; it is
//! not meant for production-sized states (the enumeration refuses to
//! start above a world-count limit).

use crate::cvar::CVarId;
use crate::database::Database;
use crate::error::CtableError;
use crate::relation::Schema;
use crate::value::Const;
use std::collections::{BTreeMap, BTreeSet};

/// A total assignment of constants to (the relevant) c-variables.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Assignment {
    map: BTreeMap<CVarId, Const>,
}

impl Assignment {
    /// An empty assignment.
    pub fn new() -> Self {
        Assignment {
            map: BTreeMap::new(),
        }
    }

    /// Builds from pairs.
    pub fn from_pairs<I: IntoIterator<Item = (CVarId, Const)>>(pairs: I) -> Self {
        Assignment {
            map: pairs.into_iter().collect(),
        }
    }

    /// Binds `var` to `value`.
    pub fn set(&mut self, var: CVarId, value: Const) {
        self.map.insert(var, value);
    }

    /// The value bound to `var`, if any.
    pub fn get(&self, var: CVarId) -> Option<&Const> {
        self.map.get(&var)
    }

    /// Lookup closure suitable for
    /// [`Condition::eval`](crate::Condition::eval); yields `None` for
    /// unbound variables (which evaluation then surfaces as an
    /// indeterminate `None` result rather than a panic).
    pub fn lookup(&self) -> impl Fn(CVarId) -> Option<Const> + '_ {
        move |v| self.map.get(&v).cloned()
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no variable is bound.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates over bindings in variable order.
    pub fn iter(&self) -> impl Iterator<Item = (&CVarId, &Const)> {
        self.map.iter()
    }
}

impl Default for Assignment {
    fn default() -> Self {
        Self::new()
    }
}

/// A fully ground tuple.
pub type GroundTuple = Vec<Const>;

/// An ordinary (variable-free) relation: a set of ground tuples.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GroundRelation {
    /// Schema (shared with the source c-table).
    pub schema: Schema,
    /// Rows, as a set (ordinary relations have set semantics).
    pub tuples: BTreeSet<GroundTuple>,
}

/// An ordinary database: one possible world of a c-table database.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GroundDatabase {
    /// The assignment that produced this world.
    pub assignment: Assignment,
    /// Ground relations by name.
    pub relations: BTreeMap<String, GroundRelation>,
}

impl GroundDatabase {
    /// Looks up a ground relation.
    pub fn relation(&self, name: &str) -> Option<&GroundRelation> {
        self.relations.get(name)
    }

    /// Total number of tuples.
    pub fn total_tuples(&self) -> usize {
        self.relations.values().map(|r| r.tuples.len()).sum()
    }
}

/// Instantiates `db` under `assignment`: substitutes c-variables,
/// evaluates row conditions, and keeps exactly the satisfied rows.
///
/// Fails with [`CtableError::UnboundCVar`] if a c-variable occurring
/// in `db` has no binding in `assignment`. Rows whose condition cannot
/// be evaluated for other reasons (a linear atom over a non-integer
/// value — a modelling error) are treated as absent.
pub fn instantiate(db: &Database, assignment: &Assignment) -> Result<GroundDatabase, CtableError> {
    for v in relevant_cvars(db) {
        if assignment.get(v).is_none() {
            return Err(CtableError::UnboundCVar(db.cvars.name(v).to_owned()));
        }
    }
    let lookup = assignment.lookup();
    let mut relations = BTreeMap::new();
    for rel in db.relations() {
        let mut tuples = BTreeSet::new();
        for t in rel.iter() {
            if t.cond.eval(&lookup) == Some(true) {
                let mut row = Vec::with_capacity(t.terms.len());
                for term in &t.terms {
                    // The check above bound every variable in `db`, so
                    // this can only be `Some`; stay panic-free anyway.
                    match term.instantiate(&lookup) {
                        Some(c) => row.push(c),
                        None => {
                            let name = term
                                .as_var()
                                .map(|v| db.cvars.name(v).to_owned())
                                .unwrap_or_default();
                            return Err(CtableError::UnboundCVar(name));
                        }
                    }
                }
                tuples.insert(row);
            }
        }
        relations.insert(
            rel.schema.name.clone(),
            GroundRelation {
                schema: rel.schema.clone(),
                tuples,
            },
        );
    }
    Ok(GroundDatabase {
        assignment: assignment.clone(),
        relations,
    })
}

/// Returns the c-variables that actually occur in `db` (in cells or
/// conditions), sorted.
pub fn relevant_cvars(db: &Database) -> Vec<CVarId> {
    let mut set = BTreeSet::new();
    for rel in db.relations() {
        for t in rel.iter() {
            for term in &t.terms {
                if let Some(v) = term.as_var() {
                    set.insert(v);
                }
            }
            t.cond.collect_cvars(&mut set);
        }
    }
    set.into_iter().collect()
}

/// Iterator over all possible worlds of a database.
///
/// Construct with [`WorldIter::new`]; iteration yields
/// [`GroundDatabase`]s in lexicographic assignment order.
pub struct WorldIter<'a> {
    db: &'a Database,
    vars: Vec<CVarId>,
    domains: Vec<Vec<Const>>,
    /// Current index per variable; `None` when exhausted.
    indices: Option<Vec<usize>>,
}

impl<'a> WorldIter<'a> {
    /// Default cap on the number of worlds enumeration will agree to visit.
    pub const DEFAULT_LIMIT: u128 = 1 << 22;

    /// Creates an enumerator over every assignment of the c-variables
    /// *used* in `db`. Fails if any used c-variable has an open domain
    /// or if the world count exceeds `limit` (default
    /// [`Self::DEFAULT_LIMIT`]).
    pub fn new(db: &'a Database, limit: Option<u128>) -> Result<Self, CtableError> {
        let vars = relevant_cvars(db);
        let mut domains = Vec::with_capacity(vars.len());
        let mut count: u128 = 1;
        for &v in &vars {
            let members = db
                .cvars
                .domain(v)
                .members()
                .ok_or_else(|| CtableError::OpenDomain(db.cvars.name(v).to_owned()))?;
            count = count.saturating_mul(members.len().max(1) as u128);
            domains.push(members);
        }
        let limit = limit.unwrap_or(Self::DEFAULT_LIMIT);
        if count > limit {
            return Err(CtableError::WorldLimitExceeded {
                worlds: count,
                limit,
            });
        }
        // An empty domain for a used variable means zero worlds.
        let indices = if domains.iter().any(|d| d.is_empty()) {
            None
        } else {
            Some(vec![0; vars.len()])
        };
        Ok(WorldIter {
            db,
            vars,
            domains,
            indices,
        })
    }

    /// The number of worlds this iterator will yield.
    pub fn world_count(&self) -> u128 {
        if self.domains.iter().any(|d| d.is_empty()) {
            return 0;
        }
        self.domains
            .iter()
            .fold(1u128, |acc, d| acc.saturating_mul(d.len() as u128))
    }

    /// The c-variables being enumerated (sorted).
    pub fn variables(&self) -> &[CVarId] {
        &self.vars
    }

    fn current_assignment(&self) -> Option<Assignment> {
        let idx = self.indices.as_ref()?;
        let mut a = Assignment::new();
        for (i, &v) in self.vars.iter().enumerate() {
            a.set(v, self.domains[i][idx[i]].clone());
        }
        Some(a)
    }

    fn advance(&mut self) {
        let Some(idx) = self.indices.as_mut() else {
            return;
        };
        // Odometer increment from the last position.
        for i in (0..idx.len()).rev() {
            idx[i] += 1;
            if idx[i] < self.domains[i].len() {
                return;
            }
            idx[i] = 0;
        }
        // Wrapped all the way: exhausted. (Zero variables => single world,
        // handled by the empty loop falling through here after one yield.)
        self.indices = None;
    }
}

impl Iterator for WorldIter<'_> {
    type Item = GroundDatabase;

    fn next(&mut self) -> Option<GroundDatabase> {
        let assignment = self.current_assignment()?;
        let world = instantiate(self.db, &assignment)
            .expect("WorldIter assignments bind every c-variable used in the database");
        self.advance();
        Some(world)
    }
}

/// Convenience: collects all worlds of `db` (respecting the default
/// world limit).
pub fn all_worlds(db: &Database) -> Result<Vec<GroundDatabase>, CtableError> {
    Ok(WorldIter::new(db, None)?.collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::condition::Condition;
    use crate::cvar::Domain;
    use crate::relation::{CTuple, Schema};
    use crate::term::Term;

    /// Table 2's P^i: a three-row c-table over (dest, path).
    fn table2_like() -> Database {
        let mut db = Database::new();
        let x = db.fresh_cvar(
            "x",
            Domain::Consts(vec![
                Const::path(&["A", "B", "C"]),
                Const::path(&["A", "D", "E", "C"]),
            ]),
        );
        let y = db.fresh_cvar(
            "y",
            Domain::Consts(vec![Const::sym("1.2.3.4"), Const::sym("1.2.3.5")]),
        );
        db.create_relation(Schema::new("P", &["dest", "path"]))
            .unwrap();
        // (1.2.3.4, x̄) [x̄=[ABC] ∨ x̄=[ADEC]]
        db.insert(
            "P",
            CTuple::with_cond(
                [Term::sym("1.2.3.4"), Term::Var(x)],
                Condition::eq(Term::Var(x), Term::Const(Const::path(&["A", "B", "C"]))).or(
                    Condition::eq(
                        Term::Var(x),
                        Term::Const(Const::path(&["A", "D", "E", "C"])),
                    ),
                ),
            ),
        )
        .unwrap();
        // (ȳ, [ABE]) [ȳ ≠ 1.2.3.4]
        db.insert(
            "P",
            CTuple::with_cond(
                [Term::Var(y), Term::Const(Const::path(&["A", "B", "E"]))],
                Condition::ne(Term::Var(y), Term::sym("1.2.3.4")),
            ),
        )
        .unwrap();
        // (1.2.3.6, [ADEC]) — empty condition
        db.insert(
            "P",
            CTuple::new([
                Term::sym("1.2.3.6"),
                Term::Const(Const::path(&["A", "D", "E", "C"])),
            ]),
        )
        .unwrap();
        db
    }

    #[test]
    fn world_count_is_domain_product() {
        let db = table2_like();
        let it = WorldIter::new(&db, None).unwrap();
        assert_eq!(it.world_count(), 4);
        assert_eq!(it.count(), 4);
    }

    #[test]
    fn conditions_filter_rows_per_world() {
        let db = table2_like();
        for world in WorldIter::new(&db, None).unwrap() {
            let p = world.relation("P").unwrap();
            let x_val = world.assignment.iter().next().unwrap().1.clone();
            // Row 1 always present (its condition covers both x̄ values).
            assert!(p
                .tuples
                .iter()
                .any(|t| t[0] == Const::sym("1.2.3.4") && t[1] == x_val));
            // Row 3 (unconditional) always present.
            assert!(p.tuples.contains(&vec![
                Const::sym("1.2.3.6"),
                Const::path(&["A", "D", "E", "C"])
            ]));
            // Row 2 present iff ȳ ≠ 1.2.3.4.
            let y_val = world.assignment.iter().nth(1).unwrap().1.clone();
            let row2 = vec![y_val.clone(), Const::path(&["A", "B", "E"])];
            assert_eq!(p.tuples.contains(&row2), y_val != Const::sym("1.2.3.4"));
        }
    }

    #[test]
    fn no_cvars_means_single_world() {
        let mut db = Database::new();
        db.create_relation(Schema::new("T", &["a"])).unwrap();
        db.insert("T", CTuple::new([Term::int(1)])).unwrap();
        let worlds = all_worlds(&db).unwrap();
        assert_eq!(worlds.len(), 1);
        assert_eq!(worlds[0].total_tuples(), 1);
    }

    #[test]
    fn open_domain_rejected() {
        let mut db = Database::new();
        let x = db.fresh_cvar("x", Domain::Open);
        db.create_relation(Schema::new("T", &["a"])).unwrap();
        db.insert("T", CTuple::new([Term::Var(x)])).unwrap();
        assert!(matches!(
            WorldIter::new(&db, None),
            Err(CtableError::OpenDomain(_))
        ));
    }

    #[test]
    fn unused_open_cvars_are_ignored() {
        let mut db = Database::new();
        let _unused = db.fresh_cvar("ghost", Domain::Open);
        db.create_relation(Schema::new("T", &["a"])).unwrap();
        db.insert("T", CTuple::new([Term::int(7)])).unwrap();
        assert_eq!(all_worlds(&db).unwrap().len(), 1);
    }

    #[test]
    fn limit_enforced() {
        let mut db = Database::new();
        db.create_relation(Schema::new("T", &["a"])).unwrap();
        let mut terms = Vec::new();
        for i in 0..8 {
            let v = db.fresh_cvar(format!("v{i}"), Domain::Bool01);
            terms.push(v);
        }
        for v in terms {
            db.insert("T", CTuple::new([Term::Var(v)])).unwrap();
        }
        // 2^8 = 256 worlds; limit of 100 must fail.
        assert!(matches!(
            WorldIter::new(&db, Some(100)),
            Err(CtableError::WorldLimitExceeded { worlds: 256, .. })
        ));
        assert_eq!(WorldIter::new(&db, Some(256)).unwrap().count(), 256);
    }

    #[test]
    fn instantiate_reports_unbound_cvars() {
        let mut db = Database::new();
        let x = db.fresh_cvar("x", Domain::Bool01);
        db.create_relation(Schema::new("T", &["a"])).unwrap();
        db.insert("T", CTuple::new([Term::Var(x)])).unwrap();
        // Empty assignment: x̄ is used but unbound — a Result, not a panic.
        assert_eq!(
            instantiate(&db, &Assignment::new()),
            Err(CtableError::UnboundCVar("x".to_owned()))
        );
        // A total assignment works.
        let mut a = Assignment::new();
        a.set(x, Const::Int(1));
        let world = instantiate(&db, &a).unwrap();
        assert_eq!(world.total_tuples(), 1);
    }

    #[test]
    fn ground_relations_are_sets() {
        // Two c-rows that instantiate to the same ground row collapse.
        let mut db = Database::new();
        let x = db.fresh_cvar("x", Domain::Ints(vec![5]));
        db.create_relation(Schema::new("T", &["a"])).unwrap();
        db.insert("T", CTuple::new([Term::int(5)])).unwrap();
        db.insert("T", CTuple::new([Term::Var(x)])).unwrap();
        let worlds = all_worlds(&db).unwrap();
        assert_eq!(worlds.len(), 1);
        assert_eq!(worlds[0].relation("T").unwrap().tuples.len(), 1);
    }
}
