//! Per-predicate column-domain inference: an abstract interpretation
//! of the program over the [`AbsDom`](crate::domains::AbsDom) lattice.
//!
//! The pass runs the program *abstractly*: input (EDB) relation
//! columns are seeded from the database contents when one is supplied
//! (c-variable cells contribute their registry domain, not ⊤), derived
//! (IDB) columns start at ⊥, and rules are iterated to fixpoint — each
//! feasible rule joins the abstract value of every head argument into
//! the head predicate's columns. Joins only grow and the lattice has
//! finite height over the program's constants, so the iteration
//! terminates.
//!
//! The result is **sound**: every constant a column can hold in any
//! derivation, over any world, lies inside the inferred domain. The
//! companion proptest in the workspace test crate checks exactly this
//! against real evaluation on the shared random corpus.
//!
//! Without a database the pass stays useful but weaker: EDB columns
//! are ⊤ and assumed nonempty (the same assumption the dead-rule pass
//! makes), so only program-visible facts — constants in rule heads and
//! bodies, comparisons — restrict domains. Inference results computed
//! without a database are valid for *any* database that does not
//! store tuples for derived predicates (shadowed inputs); database-
//! aware inference handles shadowing by seeding the shadowed columns
//! from the stored tuples.

use crate::domains::AbsDom;
use crate::feasible::{analyze_rule, RuleSemantics};
use faure_core::{ArgTerm, Program};
use faure_ctable::{Database, Term};
use std::collections::{BTreeMap, BTreeSet};

/// Per-predicate column domains.
pub type Columns = BTreeMap<String, Vec<AbsDom>>;

/// The result of column-domain inference over a program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Inference {
    /// Inferred domain of every predicate column.
    pub columns: Columns,
    /// Predicates that may hold at least one tuple. Predicates absent
    /// from this set are provably empty (under the database, when one
    /// was supplied; otherwise assuming every input relation holds
    /// tuples).
    pub nonempty: BTreeSet<String>,
    /// Per-rule abstract semantics (variable environments and
    /// feasibility), index-aligned with `program.rules`.
    pub rules: Vec<RuleSemantics>,
}

/// The arity of each predicate: database schema first, then the widest
/// program use (robust under arity-conflict findings).
fn arities(program: &Program, db: Option<&Database>) -> BTreeMap<String, usize> {
    let mut out: BTreeMap<String, usize> = BTreeMap::new();
    if let Some(db) = db {
        for rel in db.relations() {
            out.insert(rel.schema.name.clone(), rel.schema.attrs.len());
        }
    }
    for rule in &program.rules {
        let uses = std::iter::once(&rule.head).chain(rule.body.iter().map(|l| l.atom()));
        for atom in uses {
            let e = out.entry(atom.pred.clone()).or_insert(0);
            *e = (*e).max(atom.args.len());
        }
    }
    out
}

/// Runs column-domain inference to fixpoint.
pub fn infer(program: &Program, db: Option<&Database>) -> Inference {
    let idb: BTreeSet<String> = program
        .idb_predicates()
        .into_iter()
        .map(str::to_owned)
        .collect();
    let reg = db.map(|d| &d.cvars);

    let mut columns: Columns = BTreeMap::new();
    let mut nonempty: BTreeSet<String> = BTreeSet::new();
    for (pred, arity) in arities(program, db) {
        let mut cols = vec![AbsDom::Bottom; arity];
        let mut rows = false;
        match db {
            Some(db) => {
                // Stored tuples seed the columns — for EDB relations
                // and for IDB predicates shadowing an input relation
                // alike. A c-variable cell contributes its registry
                // domain.
                if let Some(rel) = db.relation(&pred) {
                    for row in rel.iter() {
                        rows = true;
                        for (col, term) in row.terms.iter().enumerate() {
                            let v = match term {
                                Term::Const(c) => AbsDom::from_const(c),
                                Term::Var(id) => AbsDom::from_domain(db.cvars.domain(*id)),
                            };
                            if let Some(slot) = cols.get_mut(col) {
                                *slot = slot.join(&v);
                            }
                        }
                    }
                }
            }
            None => {
                // No database: input relations are unknown (⊤) and
                // assumed nonempty, like the dead-rule pass assumes.
                if !idb.contains(&pred) {
                    cols = vec![AbsDom::Top; arity];
                    rows = true;
                }
            }
        }
        if rows {
            nonempty.insert(pred.clone());
        }
        columns.insert(pred, cols);
    }

    // Fixpoint: join every feasible rule's head contribution.
    loop {
        let mut changed = false;
        for rule in &program.rules {
            let sem = analyze_rule(rule, &columns, &nonempty, reg);
            if sem.infeasible.is_some() {
                continue;
            }
            if nonempty.insert(rule.head.pred.clone()) {
                changed = true;
            }
            for (col, arg) in rule.head.args.iter().enumerate() {
                let v = arg_value(arg, &sem, reg);
                let Some(slot) = columns
                    .get_mut(rule.head.pred.as_str())
                    .and_then(|cols| cols.get_mut(col))
                else {
                    continue;
                };
                let joined = slot.join(&v);
                if joined != *slot {
                    *slot = joined;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    // One final pass records each rule's semantics under the fixpoint
    // domains.
    let rules = program
        .rules
        .iter()
        .map(|rule| analyze_rule(rule, &columns, &nonempty, reg))
        .collect();

    Inference {
        columns,
        nonempty,
        rules,
    }
}

/// The abstract value a head argument contributes under `sem`.
pub(crate) fn arg_value(
    arg: &ArgTerm,
    sem: &RuleSemantics,
    reg: Option<&faure_ctable::CVarRegistry>,
) -> AbsDom {
    match arg {
        ArgTerm::Cst(c) => AbsDom::from_const(c),
        ArgTerm::Var(v) => sem.env.get(v).cloned().unwrap_or(AbsDom::Top),
        ArgTerm::CVar(name) => reg
            .and_then(|r| r.by_name(name).map(|id| AbsDom::from_domain(r.domain(id))))
            .unwrap_or(AbsDom::Top),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faure_core::parse_program;
    use faure_ctable::{CTuple, Condition, Const, Domain, Schema};

    fn db_e012() -> Database {
        let mut db = Database::new();
        let v = db.fresh_cvar("v", Domain::Ints(vec![0, 1, 2]));
        db.create_relation(Schema::new("E", &["a", "b"])).unwrap();
        db.insert("E", CTuple::new([Term::int(0), Term::int(1)]))
            .unwrap();
        db.insert(
            "E",
            CTuple::with_cond(
                [Term::Var(v), Term::int(2)],
                Condition::eq(Term::Var(v), Term::int(1)),
            ),
        )
        .unwrap();
        db
    }

    #[test]
    fn edb_columns_come_from_data_and_cvar_domains() {
        let db = db_e012();
        let p = parse_program("Q(a) :- E(a, b).\n").unwrap();
        let inf = infer(&p, Some(&db));
        // Column 0 holds 0 and the c-variable over {0, 1, 2}.
        let e = &inf.columns["E"];
        for k in 0..3 {
            assert!(e[0].contains(&Const::Int(k)), "{:?}", e[0]);
        }
        assert!(!e[0].contains(&Const::Int(5)));
        assert_eq!(e[1], AbsDom::Consts([Const::Int(1), Const::Int(2)].into()));
        // Q inherits column 0.
        assert!(inf.columns["Q"][0].contains(&Const::Int(2)));
        assert!(!inf.columns["Q"][0].contains(&Const::Int(9)));
        assert!(inf.nonempty.contains("Q"));
    }

    #[test]
    fn comparisons_refine_head_domains() {
        let db = db_e012();
        let p = parse_program("Q(a) :- E(a, b), a != 0.\n").unwrap();
        let inf = infer(&p, Some(&db));
        assert!(!inf.columns["Q"][0].contains(&Const::Int(0)));
        assert!(inf.columns["Q"][0].contains(&Const::Int(1)));
    }

    #[test]
    fn recursion_reaches_fixpoint() {
        let db = db_e012();
        let p = parse_program("R(a, b) :- E(a, b).\nR(a, c) :- E(a, b), R(b, c).\n").unwrap();
        let inf = infer(&p, Some(&db));
        let r = &inf.columns["R"];
        // R's columns cover both E columns' values transitively.
        assert!(r[0].contains(&Const::Int(0)));
        assert!(r[1].contains(&Const::Int(2)));
        assert!(!r[0].contains(&Const::Int(9)));
    }

    #[test]
    fn infeasible_rules_contribute_nothing() {
        let db = db_e012();
        let p = parse_program("Q(a) :- E(a, b), a > 100.\nP(a) :- Q(a).\n").unwrap();
        let inf = infer(&p, Some(&db));
        assert!(inf.rules[0].infeasible.is_some());
        assert!(!inf.nonempty.contains("Q"));
        assert!(!inf.nonempty.contains("P"));
        assert!(inf.rules[1].infeasible.is_some(), "{:?}", inf.rules[1]);
    }

    #[test]
    fn program_only_inference_uses_fact_constants() {
        let p = parse_program("E(0, 9).\nE(1, 9).\nQ(a) :- E(a, b).\n").unwrap();
        let inf = infer(&p, None);
        assert_eq!(
            inf.columns["Q"][0],
            AbsDom::Consts([Const::Int(0), Const::Int(1)].into())
        );
    }

    #[test]
    fn program_only_inference_keeps_unknown_edb_top() {
        let p = parse_program("Q(a) :- E(a, b).\n").unwrap();
        let inf = infer(&p, None);
        assert_eq!(inf.columns["E"], vec![AbsDom::Top, AbsDom::Top]);
        assert_eq!(inf.columns["Q"], vec![AbsDom::Top]);
        assert!(inf.nonempty.contains("Q"));
    }
}
