//! Compatibility facade over the [`crate::engine`] module family.
//!
//! Fauré-log evaluation used to live here as one monolithic function;
//! it is now the [`crate::engine`] — a prepare/run lifecycle
//! ([`crate::engine::Engine`], [`crate::engine::PreparedProgram`]) with
//! optional data-parallel fixpoint execution. This module re-exports
//! the evaluation API under its historical paths so existing callers
//! (and the `faure-core` crate root) keep working unchanged.

pub use crate::engine::{
    canonicalize, evaluate, evaluate_traced, evaluate_with, EvalError, EvalOptions, EvalOutput,
    PrunePolicy,
};
