//! C-table algebra semantics: every relational operator must commute
//! with possible-world instantiation — `op(T)` instantiated in world
//! `w` equals `op(T instantiated in w)`. This is the §3 claim that the
//! "straightforward extension of SQL" to c-tables introduces no visible
//! corruption, checked operator by operator.

use faure_ctable::worlds::WorldIter;
use faure_ctable::{CTuple, Condition, Const, Database, Domain, Schema, Term};
use faure_storage::{ops, Pattern, Table};
use proptest::prelude::*;
use std::collections::BTreeSet;

type GroundRows = BTreeSet<Vec<Const>>;

/// Instantiates a c-table in one world.
fn ground(table: &Table, lookup: &impl Fn(faure_ctable::CVarId) -> Option<Const>) -> GroundRows {
    let mut out = BTreeSet::new();
    for row in table.iter() {
        if row.cond.eval(lookup) == Some(true) {
            out.insert(
                row.terms
                    .iter()
                    .map(|t| t.instantiate(lookup).expect("world binds every c-variable"))
                    .collect(),
            );
        }
    }
    out
}

/// A database with two small c-tables A(a,b), B(b,c) over two
/// three-valued c-variables.
fn arb_db() -> impl Strategy<Value = Database> {
    let cell = 0usize..5;
    let cond = 0usize..4;
    (
        prop::collection::vec((cell.clone(), cell.clone(), cond.clone()), 1..5),
        prop::collection::vec((cell.clone(), cell, cond), 1..5),
    )
        .prop_map(|(rows_a, rows_b)| {
            let mut db = Database::new();
            let u = db.fresh_cvar("u", Domain::Ints(vec![0, 1, 2]));
            let v = db.fresh_cvar("v", Domain::Ints(vec![0, 1, 2]));
            let mk_cell = |code: usize| match code {
                0..=2 => Term::Const(Const::Int(code as i64)),
                3 => Term::Var(u),
                _ => Term::Var(v),
            };
            let mk_cond = |code: usize| match code {
                0 => Condition::True,
                1 => Condition::eq(Term::Var(u), Term::int(1)),
                2 => Condition::ne(Term::Var(v), Term::int(2)),
                _ => Condition::eq(Term::Var(u), Term::int(0))
                    .and(Condition::eq(Term::Var(v), Term::int(1))),
            };
            db.create_relation(Schema::new("A", &["a", "b"])).unwrap();
            db.create_relation(Schema::new("B", &["b", "c"])).unwrap();
            for (x, y, c) in rows_a {
                db.insert("A", CTuple::with_cond([mk_cell(x), mk_cell(y)], mk_cond(c)))
                    .unwrap();
            }
            for (x, y, c) in rows_b {
                db.insert("B", CTuple::with_cond([mk_cell(x), mk_cell(y)], mk_cond(c)))
                    .unwrap();
            }
            // Make sure both c-variables occur.
            db.insert("A", CTuple::new([Term::Var(u), Term::Var(v)]))
                .unwrap();
            db
        })
}

fn tables(db: &Database) -> (Table, Table) {
    (
        Table::from_relation(db.relation("A").unwrap()),
        Table::from_relation(db.relation("B").unwrap()),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// select(T, pat) ≡ per-world filtering.
    #[test]
    fn select_commutes_with_instantiation(db in arb_db(), k in 0i64..3) {
        let (a, _) = tables(&db);
        let pats = [Pattern::Exact(Term::int(k)), Pattern::Any];
        let selected = ops::select(&db.cvars, &a, &pats);
        for world in WorldIter::new(&db, None).unwrap() {
            let lookup = world.assignment.lookup();
            let got = ground(&selected, &lookup);
            let expect: GroundRows = ground(&a, &lookup)
                .into_iter()
                .filter(|row| row[0] == Const::Int(k))
                .collect();
            prop_assert_eq!(&got, &expect);
        }
    }

    /// join(A, B, A.b = B.b) ≡ per-world join.
    #[test]
    fn join_commutes_with_instantiation(db in arb_db()) {
        let (a, b) = tables(&db);
        let joined = ops::join(&db.cvars, &a, &b, &[(1, 0)], "J");
        for world in WorldIter::new(&db, None).unwrap() {
            let lookup = world.assignment.lookup();
            let got = ground(&joined, &lookup);
            let ga = ground(&a, &lookup);
            let gb = ground(&b, &lookup);
            let mut expect = GroundRows::new();
            for ra in &ga {
                for rb in &gb {
                    if ra[1] == rb[0] {
                        let mut row = ra.clone();
                        row.extend(rb.iter().cloned());
                        expect.insert(row);
                    }
                }
            }
            prop_assert_eq!(&got, &expect);
        }
    }

    /// union(A, A') ≡ per-world union.
    #[test]
    fn union_commutes_with_instantiation(db in arb_db()) {
        let (a, b) = tables(&db);
        // Union needs equal arity; both are binary.
        let u = ops::union(&a, &b, "U");
        for world in WorldIter::new(&db, None).unwrap() {
            let lookup = world.assignment.lookup();
            let got = ground(&u, &lookup);
            let mut expect = ground(&a, &lookup);
            expect.extend(ground(&b, &lookup));
            prop_assert_eq!(&got, &expect);
        }
    }

    /// difference(A, B) ≡ per-world set difference.
    #[test]
    fn difference_commutes_with_instantiation(db in arb_db()) {
        let (a, b) = tables(&db);
        let d = ops::difference(&db.cvars, &a, &b, "D");
        for world in WorldIter::new(&db, None).unwrap() {
            let lookup = world.assignment.lookup();
            let got = ground(&d, &lookup);
            let gb = ground(&b, &lookup);
            let expect: GroundRows = ground(&a, &lookup)
                .into_iter()
                .filter(|row| !gb.contains(row))
                .collect();
            prop_assert_eq!(&got, &expect);
        }
    }

    /// project(T, [0]) ≡ per-world projection.
    #[test]
    fn project_commutes_with_instantiation(db in arb_db()) {
        let (a, _) = tables(&db);
        let p = ops::project(&a, &[0], "P");
        for world in WorldIter::new(&db, None).unwrap() {
            let lookup = world.assignment.lookup();
            let got = ground(&p, &lookup);
            let expect: GroundRows = ground(&a, &lookup)
                .into_iter()
                .map(|row| vec![row[0].clone()])
                .collect();
            prop_assert_eq!(&got, &expect);
        }
    }

    /// The SQL layer agrees with instantiation too: a one-predicate
    /// WHERE against a c-variable column.
    #[test]
    fn sql_select_commutes_with_instantiation(db in arb_db(), k in 0i64..3) {
        let t = faure_storage::sql::query(
            &db,
            &format!("SELECT a, b FROM A WHERE b = {k}"),
        ).unwrap();
        let (a, _) = tables(&db);
        for world in WorldIter::new(&db, None).unwrap() {
            let lookup = world.assignment.lookup();
            let got = ground(&t, &lookup);
            let expect: GroundRows = ground(&a, &lookup)
                .into_iter()
                .filter(|row| row[1] == Const::Int(k))
                .collect();
            prop_assert_eq!(&got, &expect);
        }
    }

    /// Table::prune never changes per-world contents (it only removes
    /// dead rows / simplifies conditions).
    #[test]
    fn prune_is_semantically_invisible(db in arb_db()) {
        let (a, _) = tables(&db);
        let mut pruned = a.clone();
        let mut session = faure_solver::Session::new();
        pruned.prune(&db.cvars, &mut session).unwrap();
        for world in WorldIter::new(&db, None).unwrap() {
            let lookup = world.assignment.lookup();
            prop_assert_eq!(ground(&a, &lookup), ground(&pruned, &lookup));
        }
    }
}
