//! Parser robustness: display→parse round-trips on generated rules,
//! plus a grab-bag of syntax edge cases.

use faure_core::{
    parse_program, parse_rule, ArgTerm, CompExpr, Comparison, Literal, Rule, RuleAtom,
};
use faure_ctable::{CmpOp, Const};
use proptest::prelude::*;

fn arb_const() -> impl Strategy<Value = Const> {
    prop_oneof![
        (-5i64..10000).prop_map(Const::Int),
        prop_oneof![
            Just("Mkt"),
            Just("CS"),
            Just("GS"),
            Just("R&D"),
            Just("1.2.3.4"),
            Just("node_1"),
            Just("A")
        ]
        .prop_map(Const::sym),
        prop::collection::vec(
            prop_oneof![Just("A"), Just("B"), Just("C")].prop_map(Const::sym),
            1..4
        )
        .prop_map(Const::list),
    ]
}

fn arb_arg() -> impl Strategy<Value = ArgTerm> {
    prop_oneof![
        prop_oneof![Just("x"), Just("y"), Just("n1"), Just("f")]
            .prop_map(|s| ArgTerm::Var(s.to_owned())),
        prop_oneof![Just("a"), Just("b"), Just("p")].prop_map(|s| ArgTerm::CVar(s.to_owned())),
        arb_const().prop_map(ArgTerm::Cst),
    ]
}

fn arb_atom(preds: &'static [&'static str]) -> impl Strategy<Value = RuleAtom> {
    (
        prop::sample::select(preds),
        prop::collection::vec(arb_arg(), 0..4),
    )
        .prop_map(|(p, args)| RuleAtom::new(p, args))
}

fn arb_cmp() -> impl Strategy<Value = Comparison> {
    let op = prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ];
    let side = prop_oneof![
        arb_arg().prop_map(CompExpr::Arg),
        (
            prop::collection::vec((1i64..4, prop_oneof![Just("a"), Just("b")]), 1..3),
            0i64..5
        )
            .prop_filter_map(
                "a bare 1*$x+0 displays as $x (parser canonicalises it to a term)",
                |(terms, constant)| {
                    if terms.len() == 1 && terms[0].0 == 1 && constant == 0 {
                        return None;
                    }
                    Some(CompExpr::Lin {
                        terms: terms.into_iter().map(|(c, n)| (c, n.to_owned())).collect(),
                        constant,
                    })
                }
            ),
    ];
    (side.clone(), op, side).prop_map(|(lhs, op, rhs)| Comparison { lhs, op, rhs })
}

fn arb_rule() -> impl Strategy<Value = Rule> {
    (
        arb_atom(&["H", "R", "T1"]),
        prop::collection::vec((arb_atom(&["F", "R", "Lb"]), any::<bool>()), 0..3),
        prop::collection::vec(arb_cmp(), 0..2),
    )
        .prop_map(|(head, body, comparisons)| Rule {
            head,
            body: body
                .into_iter()
                .map(|(a, neg)| {
                    if neg {
                        Literal::Neg(a)
                    } else {
                        Literal::Pos(a)
                    }
                })
                .collect(),
            comparisons,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Any rule the AST can express must survive display → parse.
    #[test]
    fn display_parse_round_trip(rule in arb_rule()) {
        let text = rule.to_string();
        let reparsed = parse_rule(&text)
            .unwrap_or_else(|e| panic!("could not reparse `{text}`: {e}"));
        prop_assert_eq!(rule, reparsed);
    }
}

#[test]
fn whitespace_and_comments_are_flexible() {
    let p = parse_program(
        "% leading comment\n\
         R(a,b):-F(a,b).\n\
         \n\
         R( a , b ) :- F( a , c ) , R( c , b ) . % trailing\n",
    )
    .unwrap();
    assert_eq!(p.rules.len(), 2);
}

#[test]
fn zero_ary_heads_and_bodies() {
    let p = parse_program("panic :- alarm, R(x).\nalarm :- F(1).\n").unwrap();
    assert!(p.rules[0].body[0].atom().args.is_empty());
}

#[test]
fn negative_numbers_and_lists() {
    let r = parse_rule("T(x) :- F(x, -3, [A, [B, C]]).").unwrap();
    assert_eq!(r.body[0].atom().args[1], ArgTerm::Cst(Const::Int(-3)));
    match &r.body[0].atom().args[2] {
        ArgTerm::Cst(Const::List(items)) => assert_eq!(items.len(), 2),
        other => panic!("expected list, got {other:?}"),
    }
}

#[test]
fn escaped_strings() {
    let r = parse_rule(r#"T("a\"b") :- F(x)."#).unwrap();
    assert_eq!(r.head.args[0], ArgTerm::Cst(Const::sym("a\"b")));
}

#[test]
fn deeply_nested_failure_patterns_parse() {
    let r = parse_rule("T(f) :- R(f), 2*$a + 3*$b + 1 <= 2*$a + $b, $a != $b, $a = 1.").unwrap();
    assert_eq!(r.comparisons.len(), 3);
}
