//! Import a `show ip bgp`-style RIB dump and analyse it (paper §6's
//! data path, for real dumps).
//!
//! Run with:
//! `cargo run -p faure-examples --bin rib_import [dump.txt]`
//!
//! Without an argument, a small bundled sample is used.

use faure_core::evaluate;
use faure_net::{queries, ribtext};

const SAMPLE: &str = "\
   Network          Next Hop            Metric LocPrf Weight Path
*> 1.0.0.0/24       203.0.113.1              0             0 701 38040 9737 i
*  1.0.0.0/24       198.51.100.7                           0 3356 9737 i
*                   192.0.2.9                              0 2914 4826 9737 i
*> 1.0.4.0/22       203.0.113.1                            0 701 6939 4826 i
*  1.0.4.0/22       198.51.100.7                           0 3356 4826 i
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let text = match std::env::args().nth(1) {
        Some(path) => std::fs::read_to_string(path)?,
        None => SAMPLE.to_owned(),
    };
    let routes = ribtext::parse_rib(&text)?;
    println!(
        "parsed {} routes over {} prefixes",
        routes.len(),
        ribtext::group_routes(&routes).len()
    );

    let w = ribtext::workload_from_routes(&routes);
    println!(
        "forwarding c-table: {} rows\n",
        w.db.relation("F").expect("built").len()
    );

    let out = evaluate(&queries::reachability_program(), &w.db)?;
    let r = out.relation("R").expect("derived");
    println!("reachability (per prefix-index, with failure conditions):");
    for row in r.iter().take(20) {
        println!("  R{}", row.display(&out.database.cvars));
    }
    if r.len() > 20 {
        println!("  ... ({} rows total)", r.len());
    }
    Ok(())
}
