//! Regenerates the paper's Table 4 on the synthetic RIB workload.
//!
//! ```text
//! cargo run -p faure-bench --release --bin table4 [-- --sizes 1000,10000] \
//!     [--seed N] [--json out.json] [--prune eager|stratum|never] \
//!     [--threads 1,4] [--shards 1,2,4,8] [--churn 1000] \
//!     [--churn-updates 200] [--churn-only] [--q45-only] \
//!     [--telemetry-addr 127.0.0.1:9090]
//! ```
//!
//! `--threads` takes a comma-separated list of worker counts; each size
//! is evaluated once per count, and rows at > 1 threads record their
//! q4–q5 speedup over the serial row of the same size (requires `1` in
//! the list). `--shards` sweeps the partitioned fixpoint the same way
//! (each size runs once per (threads, shards) pair; the 1-thread,
//! 1-shard row is the speedup baseline), and sharded rows carry the
//! `routed_deltas` / `shard_imbalance` exchange metrics.
//!
//! `--churn` adds the incremental-maintenance benchmark for the listed
//! sizes: the q4–q5 fixpoint is materialized once, then
//! `--churn-updates` single-tuple deltas stream through
//! `PreparedProgram::apply` (~9:1 announce:withdraw), and the mean
//! per-update wall is compared against one full re-evaluation of the
//! final database. Churn rows are tagged `"bench":"churn"` in the JSON
//! dump. `--churn-only` skips the Table 4 sweep.
//!
//! `--q45-only` runs just the recursive q4–q5 stage per row, leaving
//! the q6–q8 cells zeroed — the path for the paper's 922 067-prefix
//! input, where the downstream q6 stage would double the peak derived
//! footprint.
//!
//! `--telemetry-addr HOST:PORT` serves the process-global telemetry
//! registry as Prometheus text format on `/metrics` while the bench
//! runs — scrape it mid-churn to watch the engine counters move.
//!
//! Defaults to the sizes 1 000 and 10 000 (the paper also runs 100 000
//! and 922 067; pass them explicitly if you have the minutes — the
//! shape, not the wall-clock, is the reproduction target).

use faure_bench::{
    mixed_rows_to_json, print_table, run_churn_row, run_table4_q45_row, run_table4_row, ChurnRow,
    HarnessOptions, Table4Row,
};
use faure_core::PrunePolicy;

fn main() {
    let mut sizes: Vec<usize> = vec![1000, 10_000];
    let mut opts = HarnessOptions::default();
    let mut json_path: Option<String> = None;
    let mut thread_counts: Vec<usize> = vec![opts.eval.threads];
    let mut shard_counts: Vec<usize> = vec![opts.eval.shards.max(1)];
    let mut churn_sizes: Vec<usize> = Vec::new();
    let mut churn_updates: usize = 200;
    let mut churn_only = false;
    let mut q45_only = false;
    let mut telemetry_addr: Option<String> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--sizes" => {
                i += 1;
                sizes = args[i]
                    .split(',')
                    .map(|s| s.trim().parse().expect("--sizes takes a,b,c"))
                    .collect();
            }
            "--seed" => {
                i += 1;
                opts.seed = args[i].parse().expect("--seed takes an integer");
            }
            "--json" => {
                i += 1;
                json_path = Some(args[i].clone());
            }
            "--prune" => {
                i += 1;
                opts.eval.prune = match args[i].as_str() {
                    "eager" => PrunePolicy::Eager,
                    "stratum" => PrunePolicy::EndOfStratum,
                    "never" => PrunePolicy::Never,
                    other => panic!("unknown prune policy {other}"),
                };
            }
            "--threads" => {
                i += 1;
                thread_counts = args[i]
                    .split(',')
                    .map(|s| s.trim().parse().expect("--threads takes a,b,c"))
                    .collect();
                assert!(
                    thread_counts.iter().all(|&t| t >= 1),
                    "--threads counts must be >= 1"
                );
            }
            "--shards" => {
                i += 1;
                shard_counts = args[i]
                    .split(',')
                    .map(|s| s.trim().parse().expect("--shards takes a,b,c"))
                    .collect();
                assert!(
                    shard_counts.iter().all(|&s| s >= 1),
                    "--shards counts must be >= 1"
                );
            }
            "--churn" => {
                i += 1;
                churn_sizes = args[i]
                    .split(',')
                    .map(|s| s.trim().parse().expect("--churn takes a,b,c"))
                    .collect();
            }
            "--churn-updates" => {
                i += 1;
                churn_updates = args[i].parse().expect("--churn-updates takes an integer");
            }
            "--churn-only" => {
                churn_only = true;
            }
            "--q45-only" => {
                q45_only = true;
            }
            "--telemetry-addr" => {
                i += 1;
                telemetry_addr = Some(args[i].clone());
            }
            other => {
                panic!(
                    "unknown argument {other} (try --sizes/--seed/--json/--prune/--threads/\
                     --shards/--churn/--churn-updates/--churn-only/--q45-only/--telemetry-addr)"
                )
            }
        }
        i += 1;
    }

    if churn_only {
        sizes.clear();
    }
    // The engine publishes its counters into the process-global
    // telemetry registry at apply boundaries; the exporter thread just
    // serves whatever has accumulated, so a mid-run scrape watches the
    // bench make progress.
    if let Some(addr) = &telemetry_addr {
        match faure_trace::prom::serve(addr, faure_trace::telemetry::global()) {
            Ok(srv) => eprintln!("telemetry: serving /metrics on http://{}/", srv.addr),
            Err(e) => {
                eprintln!("error: --telemetry-addr {addr}: {e}");
                std::process::exit(1);
            }
        }
    }
    eprintln!(
        "running Listing 2 (q4-q8) on the synthetic RIB workload, sizes {sizes:?}, seed {}, threads {thread_counts:?}, shards {shard_counts:?}",
        opts.seed
    );
    let mut rows: Vec<Table4Row> = Vec::new();
    for &n in &sizes {
        // Serial q4-q5 baselines for this size (whole-query wall-clock
        // and the prune phase alone), for the speedup columns of the
        // > 1-thread / > 1-shard rows.
        let mut serial_q45: Option<f64> = None;
        let mut serial_prune: Option<f64> = None;
        for &t in &thread_counts {
            for &sh in &shard_counts {
                eprintln!(
                    "  generating + evaluating {n} prefixes ({t} thread(s), {sh} shard(s)) ..."
                );
                opts.eval.threads = t;
                opts.eval.shards = sh;
                let mut row = if q45_only {
                    run_table4_q45_row(n, &opts).expect("evaluation succeeds")
                } else {
                    run_table4_row(n, &opts).expect("evaluation succeeds")
                };
                if t == 1 && sh == 1 {
                    serial_q45 = Some(row.q45_wall());
                    serial_prune = Some(row.prune_wall());
                } else {
                    // A 1-vs-N comparison only measures parallel
                    // speedup when the machine that produced this row
                    // had >= 2 cores — derived from the row's own
                    // recorded host_cores, not a fresh probe, so the
                    // gate travels with the dump.
                    let multicore = row.host_cores >= 2;
                    row.speedup_valid = multicore;
                    if !multicore {
                        eprintln!(
                            "    note: single-core runner — speedup_q45 omitted (speedup_valid: false)"
                        );
                    }
                    if let Some(base) = serial_q45 {
                        if multicore && row.q45_wall() > 0.0 {
                            row.speedup_q45 = Some(base / row.q45_wall());
                        }
                    }
                    if let Some(base) = serial_prune {
                        if multicore && row.prune_wall() > 0.0 {
                            row.prune_speedup = Some(base / row.prune_wall());
                        }
                    }
                }
                eprintln!(
                    "    done in {:.1}s ({} F-tuples, {} R-tuples{}{}{})",
                    row.total,
                    row.f_tuples,
                    row.q45.tuples,
                    row.speedup_q45
                        .map(|s| format!(", q4-q5 speedup {s:.2}x"))
                        .unwrap_or_default(),
                    row.prune_speedup
                        .map(|s| format!(", prune speedup {s:.2}x"))
                        .unwrap_or_default(),
                    if row.shards > 1 {
                        format!(
                            ", {} routed deltas, imbalance {}",
                            row.routed_deltas,
                            row.shard_imbalance
                                .map(|r| format!("{r:.2}"))
                                .unwrap_or_else(|| "n/a".into())
                        )
                    } else {
                        String::new()
                    }
                );
                rows.push(row);
            }
        }
    }

    // Churn rows: standing materialization + update stream, one row
    // per size and thread count (q4-q5 only — the recursive query is
    // the maintenance-sensitive one).
    let mut churn_rows: Vec<ChurnRow> = Vec::new();
    for &n in &churn_sizes {
        for &t in &thread_counts {
            eprintln!("  churn: {n} prefixes, {churn_updates} updates ({t} thread(s)) ...");
            opts.eval.threads = t;
            let row = run_churn_row(n, churn_updates, &opts).expect("churn run succeeds");
            eprintln!(
                "    per-update {}ns mean / {}ns max vs full re-eval {}ns ({:.1}x)",
                row.per_update_wall_ns,
                row.max_update_wall_ns,
                row.full_reeval_wall_ns,
                row.speedup
            );
            churn_rows.push(row);
        }
    }

    if !rows.is_empty() {
        println!("\nTable 4 (reproduced): running time of reachability analysis");
        println!("(times in seconds; Nm = milliseconds, Nu = microseconds)\n");
        print_table(&rows);
    }
    if !churn_rows.is_empty() {
        println!("\nchurn: incremental maintenance vs full re-evaluation (q4-q5)\n");
        println!(
            "{:>9} {:>8} {:>8} | {:>14} {:>14} {:>14} {:>8}",
            "#prefix", "threads", "updates", "per-update", "max-update", "full-reeval", "speedup"
        );
        for r in &churn_rows {
            println!(
                "{:>9} {:>8} {:>8} | {:>12}ns {:>12}ns {:>12}ns {:>7.1}x",
                r.prefixes,
                r.threads,
                r.updates,
                r.per_update_wall_ns,
                r.max_update_wall_ns,
                r.full_reeval_wall_ns,
                r.speedup
            );
        }
    }

    if let Some(path) = json_path {
        let mut encoded: Vec<String> = rows.iter().map(Table4Row::to_json).collect();
        encoded.extend(churn_rows.iter().map(ChurnRow::to_json));
        if let Err(e) = std::fs::write(&path, mixed_rows_to_json(&encoded)) {
            eprintln!("error: {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("\nwrote {path}");
    }
}
