//! Differential testing of the plan-compiled evaluator.
//!
//! The planning layer (`faure_core::plan`) reorders joins, forces delta
//! slots, and pushes comparisons down — none of which may change *what*
//! is derived. These properties pin that down from two directions:
//!
//! 1. **World-equivalence** (the paper's §4 loss-lessness, reused as a
//!    differential oracle): plan-compiled evaluation over the c-table
//!    must instantiate, in every possible world, to exactly what the
//!    independent ground evaluator (`faure_core::reference`) computes
//!    in that world — on *random* programs including recursive,
//!    non-linear-recursive, and negated rules over random databases.
//! 2. **Permutation invariance**: writing the same rule body in a
//!    different textual order must yield the identical relation (same
//!    tuples, same canonical conditions), because the planner re-orders
//!    literals by selectivity regardless of source order.
//!
//! Plus structural invariants on every compiled plan: each body literal
//! executes exactly once, each comparison is evaluated exactly once,
//! and a delta slot is always step 0.

use faure_core::{compile_rule, evaluate, parse_program, Program, Rule};
use faure_tests::assert_lossless;
use faure_tests::corpus::{arb_db, arb_program};
use proptest::prelude::*;
use std::collections::BTreeSet;

// ---------------------------------------------------------------------------
// structural plan invariants
// ---------------------------------------------------------------------------

/// Every compiled plan must execute each body literal exactly once and
/// each comparison exactly once, with any delta slot forced to step 0.
fn assert_plan_invariants(rule: &Rule, delta_pos: Option<usize>) {
    let plan = compile_rule(rule, delta_pos);
    assert_eq!(plan.delta_pos, delta_pos);

    let mut lits: Vec<usize> = plan.steps.iter().map(|s| s.lit_pos).collect();
    lits.extend(&plan.negations);
    lits.sort_unstable();
    let all: Vec<usize> = (0..rule.body.len()).collect();
    assert_eq!(lits, all, "each body literal appears exactly once\n{rule}");

    let mut cmps: Vec<usize> = plan.initial_comparisons.clone();
    for step in &plan.steps {
        cmps.extend(&step.comparisons);
    }
    cmps.sort_unstable();
    let all: Vec<usize> = (0..rule.comparisons.len()).collect();
    assert_eq!(cmps, all, "each comparison evaluated exactly once\n{rule}");

    if let Some(dp) = delta_pos {
        assert!(plan.steps[0].is_delta, "delta slot is step 0\n{rule}");
        assert_eq!(plan.steps[0].lit_pos, dp);
        assert!(
            plan.steps.iter().skip(1).all(|s| !s.is_delta),
            "only one delta step\n{rule}"
        );
    } else {
        assert!(plan.steps.iter().all(|s| !s.is_delta));
    }
}

/// Snapshot of a derived relation: tuples plus canonical conditions,
/// order-independent.
fn relation_snapshot(out: &faure_core::EvalOutput, program: &Program) -> BTreeSet<String> {
    let mut snap = BTreeSet::new();
    for pred in program.idb_predicates() {
        for row in out.relation(pred).expect("IDB relation exists").iter() {
            snap.insert(format!("{pred}{:?} :- {:?}", row.terms, row.cond));
        }
    }
    snap
}

// ---------------------------------------------------------------------------
// properties
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Plan-compiled evaluation is world-equivalent to the independent
    /// ground reference evaluator on random programs (recursive,
    /// non-linear-recursive, negated) over random c-table databases.
    #[test]
    fn plans_are_world_equivalent_to_reference(db in arb_db(), program in arb_program()) {
        let worlds = assert_lossless(&program, &db);
        prop_assert_eq!(worlds, 9, "two {{0,1,2}} c-variables span 9 worlds");
    }

    /// Structural invariants hold for the full plan and every delta
    /// variant of every generated rule.
    #[test]
    fn compiled_plans_cover_rules_exactly(program in arb_program()) {
        for rule in &program.rules {
            assert_plan_invariants(rule, None);
            for (pos, lit) in rule.body.iter().enumerate() {
                if !lit.is_negative() {
                    assert_plan_invariants(rule, Some(pos));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// permutation invariance (deterministic)
// ---------------------------------------------------------------------------

#[test]
fn body_order_does_not_change_results() {
    let (db, _) = faure_ctable::examples::table2_path_db();
    // The same join written in all 3! literal orders (modulo the
    // comparison, which the parser keeps separate anyway).
    let orders = [
        r#"Cost(c) :- P("1.2.3.4", p), C(p, c)."#,
        r#"Cost(c) :- C(p, c), P("1.2.3.4", p)."#,
    ];
    let mut snaps = Vec::new();
    for src in orders {
        let program = parse_program(src).unwrap();
        let out = evaluate(&program, &db).unwrap();
        snaps.push(relation_snapshot(&out, &program));
    }
    assert_eq!(snaps[0], snaps[1], "literal order must not matter");
}

#[test]
fn recursive_body_order_does_not_change_results() {
    let (db, _) = faure_net::frr::figure1_database();
    let orders = [
        "R(f, n1, n2) :- F(f, n1, n2).\n\
         R(f, n1, n2) :- F(f, n1, n3), R(f, n3, n2).\n",
        "R(f, n1, n2) :- F(f, n1, n2).\n\
         R(f, n1, n2) :- R(f, n3, n2), F(f, n1, n3).\n",
    ];
    let mut snaps = Vec::new();
    for src in orders {
        let program = parse_program(src).unwrap();
        let out = evaluate(&program, &db).unwrap();
        snaps.push(relation_snapshot(&out, &program));
    }
    assert_eq!(
        snaps[0], snaps[1],
        "recursive literal order must not matter"
    );
}
