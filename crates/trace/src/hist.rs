//! Power-of-two latency histogram.
//!
//! The solver session records per-check solve latencies here; the
//! metrics writer serialises the non-empty buckets. Buckets are
//! `[2^i, 2^{i+1})` nanoseconds for `i` in `0..32` (the last bucket
//! absorbs everything ≥ 2^31 ns ≈ 2.1 s), which keeps the struct
//! `Copy`-sized and mergeable with plain saturating adds — important
//! because per-worker `SolverStats` are folded in chunk order.

/// Number of power-of-two buckets.
pub const BUCKETS: usize = 32;

/// A fixed-size power-of-two histogram of nanosecond durations.
///
/// Bucket `i` counts samples in `[2^i, 2^{i+1})` ns; a sample of 0 ns
/// lands in bucket 0. All arithmetic saturates, so merging partial
/// histograms from workers can never wrap.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; BUCKETS],
    count: u64,
    sum_ns: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: [0; BUCKETS],
            count: 0,
            sum_ns: 0,
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket(ns: u64) -> usize {
        (63 - u64::leading_zeros(ns.max(1)) as usize).min(BUCKETS - 1)
    }

    /// Records one sample.
    pub fn record(&mut self, ns: u64) {
        self.counts[Self::bucket(ns)] = self.counts[Self::bucket(ns)].saturating_add(1);
        self.count = self.count.saturating_add(1);
        self.sum_ns = self.sum_ns.saturating_add(ns);
    }

    /// Folds `other` into `self` (saturating).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a = a.saturating_add(*b);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum_ns = self.sum_ns.saturating_add(other.sum_ns);
    }

    /// Total number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples in nanoseconds.
    pub fn sum_ns(&self) -> u64 {
        self.sum_ns
    }

    /// Mean sample in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.checked_div(self.count).unwrap_or(0)
    }

    /// Upper bound of the bucket containing the `q`-quantile
    /// (`0.0 ..= 1.0`); 0 when empty. A bucket upper bound, not an
    /// interpolated value — good enough for a profile report.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            seen = seen.saturating_add(*c);
            if seen >= rank {
                return Self::bucket_bounds(i).1;
            }
        }
        Self::bucket_bounds(BUCKETS - 1).1
    }

    /// `(lo, hi)` nanosecond bounds of bucket `i`: `[lo, hi)`.
    pub fn bucket_bounds(i: usize) -> (u64, u64) {
        let lo = if i == 0 { 0 } else { 1u64 << i };
        let hi = if i + 1 >= 64 {
            u64::MAX
        } else {
            1u64 << (i + 1)
        };
        (lo, hi)
    }

    /// All per-bucket counts, low bucket first. Bucket `i` counts
    /// samples in [`Histogram::bucket_bounds`]`(i)`; the Prometheus
    /// renderer turns these into cumulative `_bucket` series.
    pub fn counts(&self) -> &[u64; BUCKETS] {
        &self.counts
    }

    /// The samples recorded since `earlier` (an older snapshot of the
    /// same histogram), bucket-wise. Counters only grow, so a
    /// saturating subtraction is exact for genuine snapshots and
    /// clamps at zero if the baseline is from another histogram.
    pub fn since(&self, earlier: &Histogram) -> Histogram {
        let mut out = *self;
        for (a, b) in out.counts.iter_mut().zip(earlier.counts.iter()) {
            *a = a.saturating_sub(*b);
        }
        out.count = self.count.saturating_sub(earlier.count);
        out.sum_ns = self.sum_ns.saturating_sub(earlier.sum_ns);
        out
    }

    /// Non-empty buckets as `(lo_ns, hi_ns, count)`, low to high.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, c)| **c > 0)
            .map(|(i, c)| {
                let (lo, hi) = Self::bucket_bounds(i);
                (lo, hi, *c)
            })
            .collect()
    }

    /// JSON array of the non-empty buckets:
    /// `[{"lo_ns":..,"hi_ns":..,"count":..}, ...]`.
    pub fn to_json(&self) -> String {
        let items: Vec<String> = self
            .nonzero_buckets()
            .into_iter()
            .map(|(lo, hi, c)| format!("{{\"lo_ns\":{lo},\"hi_ns\":{hi},\"count\":{c}}}"))
            .collect();
        format!("[{}]", items.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucketing_is_power_of_two() {
        let mut h = Histogram::new();
        h.record(0); // bucket 0: [0, 2)
        h.record(1); // bucket 0
        h.record(2); // bucket 1: [2, 4)
        h.record(3); // bucket 1
        h.record(4); // bucket 2
        h.record(1023); // bucket 9
        h.record(1024); // bucket 10
        assert_eq!(
            h.nonzero_buckets(),
            vec![
                (0, 2, 2),
                (2, 4, 2),
                (4, 8, 1),
                (512, 1024, 1),
                (1024, 2048, 1),
            ]
        );
        assert_eq!(h.count(), 7);
        assert_eq!(h.sum_ns(), 1 + 2 + 3 + 4 + 1023 + 1024);
    }

    #[test]
    fn huge_samples_clamp_to_last_bucket() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        let buckets = h.nonzero_buckets();
        assert_eq!(buckets.len(), 1);
        assert_eq!(buckets[0].0, 1u64 << 31);
    }

    #[test]
    fn merge_sums_everything() {
        let mut a = Histogram::new();
        a.record(3);
        a.record(100);
        let mut b = Histogram::new();
        b.record(3);
        let mut merged = a;
        merged.merge(&b);
        assert_eq!(merged.count(), 3);
        assert_eq!(merged.sum_ns(), 106);
        let by_hand = {
            let mut h = Histogram::new();
            h.record(3);
            h.record(100);
            h.record(3);
            h
        };
        assert_eq!(merged, by_hand);
    }

    #[test]
    fn merge_saturates() {
        let mut a = Histogram::new();
        a.record(1);
        a.sum_ns = u64::MAX;
        a.count = u64::MAX;
        let mut b = Histogram::new();
        b.record(1);
        a.merge(&b);
        assert_eq!(a.count(), u64::MAX);
        assert_eq!(a.sum_ns(), u64::MAX);
    }

    #[test]
    fn quantiles_hit_bucket_upper_bounds() {
        let mut h = Histogram::new();
        for _ in 0..90 {
            h.record(10); // bucket 3: [8, 16)
        }
        for _ in 0..10 {
            h.record(1000); // bucket 9: [512, 1024)
        }
        assert_eq!(h.quantile(0.5), 16);
        assert_eq!(h.quantile(0.99), 1024);
        assert_eq!(h.mean_ns(), (90 * 10 + 10 * 1000) / 100);
        assert_eq!(Histogram::new().quantile(0.5), 0);
    }

    #[test]
    fn json_lists_nonzero_buckets() {
        let mut h = Histogram::new();
        h.record(5);
        assert_eq!(h.to_json(), "[{\"lo_ns\":4,\"hi_ns\":8,\"count\":1}]");
        assert_eq!(Histogram::new().to_json(), "[]");
    }
}
