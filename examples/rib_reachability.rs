//! Reachability analysis on a RIB-scale workload (paper §6).
//!
//! Generates a synthetic stand-in for the paper's route-views-derived
//! forwarding state (per prefix: one primary and four preference-
//! ordered backup AS paths, guarded by failure c-variables), then runs
//! Listing 2's queries and prints a Table 4-style row: per-query
//! relational ("sql") time, solver ("Z3") time, and tuple counts.
//!
//! Run with: `cargo run -p faure-examples --release --bin rib_reachability [prefixes]`

use faure_core::{evaluate_with, EvalOptions, PrunePolicy};
use faure_net::{queries, rib};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let prefixes: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(200);

    let params = rib::RibParams {
        prefixes,
        ..Default::default()
    };
    println!(
        "generating workload: {} prefixes x {} paths (seed {})",
        params.prefixes, params.paths_per_prefix, params.seed
    );
    let workload = rib::generate(&params);
    let f = workload.db.relation("F").expect("generated");
    println!("forwarding c-table F: {} rows\n", f.len());

    // q4–q5: all-pairs reachability (recursive). Solver pruning at end
    // of stratum, as in the paper's batch Z3 step.
    let opts = EvalOptions {
        prune: PrunePolicy::EndOfStratum,
        ..Default::default()
    };

    println!(
        "{:<8} {:>12} {:>12} {:>10}",
        "query", "sql", "solver", "#tuples"
    );
    let mut db = workload.db.clone();

    // Reachability first; its output R feeds q6/q7/q8.
    let out = evaluate_with(&queries::reachability_program(), &db, &opts)?;
    println!(
        "{:<8} {:>12?} {:>12?} {:>10}",
        "q4-q5", out.stats.relational, out.stats.solver, out.stats.tuples
    );
    db = out.database;

    let out6 = evaluate_with(&queries::q6_two_link_failure(), &db, &opts)?;
    println!(
        "{:<8} {:>12?} {:>12?} {:>10}",
        "q6", out6.stats.relational, out6.stats.solver, out6.stats.tuples
    );

    // q7 reads T1 (nested query): evaluate against the q6 output. Pick
    // the workload's busiest forwarding hop so the pair is exercised.
    let (src, dst) = rib::frequent_pair(&workload).unwrap_or((0, 1));
    let out7 = evaluate_with(
        &queries::q7_pair_under_y_failure(src, dst),
        &out6.database,
        &opts,
    )?;
    println!(
        "{:<8} {:>12?} {:>12?} {:>10}",
        "q7", out7.stats.relational, out7.stats.solver, out7.stats.tuples
    );

    let out8 = evaluate_with(&queries::q8_reach_with_failure(1), &db, &opts)?;
    println!(
        "{:<8} {:>12?} {:>12?} {:>10}",
        "q8", out8.stats.relational, out8.stats.solver, out8.stats.tuples
    );

    println!(
        "\n(the paper's Table 4 reports the same columns on 1k-922k \
         prefixes; regenerate with `cargo run -p faure-bench --release --bin table4`)"
    );
    Ok(())
}
