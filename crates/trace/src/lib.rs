//! # faure-trace — structured tracing for the evaluation pipeline
//!
//! The paper's evaluation (§4, Table 4) hinges on knowing *where*
//! c-table evaluation spends time: join fan-out vs. condition growth
//! vs. solver calls. This crate is the dependency-free span/counter
//! layer the engine, storage executor, and solver emit into.
//!
//! ## Design constraints
//!
//! * **No globals.** A [`Tracer`] is an explicit handle constructed
//!   from an injected [`Clock`] and [`TraceSink`]; everything that
//!   wants to emit events is handed one. Tests inject a [`ManualClock`]
//!   for byte-stable traces.
//! * **~Zero cost when disabled.** [`Tracer::disabled`] is an `Option`
//!   that is `None`: every emission site is one branch, and argument
//!   vectors are built inside closures that are never called.
//! * **Deterministic event order.** The driver thread emits directly
//!   into the sink in program order; parallel workers buffer their
//!   events locally and the engine [submits](Tracer::submit) the
//!   buffers in chunk order after the join — the recorded stream is
//!   identical at any thread count (timestamps aside), mirroring the
//!   engine's chunk-order result merge.
//!
//! ## Outputs
//!
//! * [`chrome::trace_json`] renders events in Chrome `trace_event`
//!   format (loadable in `chrome://tracing` / Perfetto);
//! * [`metrics`] rolls spans up by `(category, name)` or by an argument
//!   key into stable aggregate records for the `--metrics` schema;
//! * [`Histogram`] is the power-of-two latency histogram the solver
//!   session records per-check solve times into.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
pub mod flight;
pub mod hist;
pub mod metrics;
pub mod prom;
pub mod telemetry;

pub use flight::{FlightRecorder, Tee};
pub use hist::Histogram;

use std::borrow::Cow;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

// ---------------------------------------------------------------------------
// clocks
// ---------------------------------------------------------------------------

/// A monotonic nanosecond clock. Injected into the [`Tracer`] at
/// construction — nothing in this crate reads ambient time.
pub trait Clock: Send + Sync + fmt::Debug {
    /// Nanoseconds since the clock's origin.
    fn now_ns(&self) -> u64;
}

/// Wall clock: nanoseconds since the instant the clock was created.
#[derive(Debug)]
pub struct MonotonicClock(Instant);

impl MonotonicClock {
    /// A clock whose origin is now.
    pub fn starting_now() -> Self {
        MonotonicClock(Instant::now())
    }
}

impl Clock for MonotonicClock {
    fn now_ns(&self) -> u64 {
        u64::try_from(self.0.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// A hand-advanced clock for deterministic tests: `now_ns` returns
/// whatever the test last [`set`](ManualClock::set) or accumulated via
/// [`advance`](ManualClock::advance).
#[derive(Debug, Default)]
pub struct ManualClock(AtomicU64);

impl ManualClock {
    /// A clock stuck at 0 until advanced.
    pub fn new() -> Self {
        Self::default()
    }

    /// Moves the clock forward by `ns`.
    pub fn advance(&self, ns: u64) {
        self.0.fetch_add(ns, Ordering::Relaxed);
    }

    /// Sets the clock to an absolute value.
    pub fn set(&self, ns: u64) {
        self.0.store(ns, Ordering::Relaxed);
    }
}

impl Clock for ManualClock {
    fn now_ns(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------------
// events
// ---------------------------------------------------------------------------

/// A typed event argument.
#[derive(Clone, Debug, PartialEq)]
pub enum ArgValue {
    /// Unsigned counter (row counts, sizes, indices).
    UInt(u64),
    /// Signed integer.
    Int(i64),
    /// Floating-point (rates, ratios).
    Float(f64),
    /// Free-form label (predicate names, file labels).
    Str(String),
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::UInt(v)
    }
}

impl From<usize> for ArgValue {
    fn from(v: usize) -> Self {
        ArgValue::UInt(v as u64)
    }
}

impl From<u32> for ArgValue {
    fn from(v: u32) -> Self {
        ArgValue::UInt(u64::from(v))
    }
}

impl From<i64> for ArgValue {
    fn from(v: i64) -> Self {
        ArgValue::Int(v)
    }
}

impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::Float(v)
    }
}

impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        ArgValue::Str(v.to_owned())
    }
}

impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        ArgValue::Str(v)
    }
}

/// One recorded span (or instant, when `dur_ns == 0`).
///
/// `cat`/`name` are static so that emission never allocates for the
/// identity of an event; variable payload goes in `args`.
#[derive(Clone, Debug, PartialEq)]
pub struct Event {
    /// Category — the pipeline layer: `prepare`, `eval`, `fixpoint`,
    /// `worker`, `solver`, `cli`.
    pub cat: &'static str,
    /// Event name within the category (e.g. `rule-pass`, `stratum`).
    pub name: &'static str,
    /// Start timestamp, nanoseconds on the tracer's clock.
    pub start_ns: u64,
    /// Duration in nanoseconds (0 for instant/counter events).
    pub dur_ns: u64,
    /// Logical track: 0 is the driver thread, `1..` are parallel
    /// workers (chunk index + 1, not OS thread ids — deterministic).
    pub track: u32,
    /// Typed payload.
    pub args: Vec<(&'static str, ArgValue)>,
}

impl Event {
    /// Looks up an unsigned argument by name (accepting `Int` ≥ 0).
    pub fn arg_u64(&self, name: &str) -> Option<u64> {
        self.args
            .iter()
            .find(|(n, _)| *n == name)
            .and_then(|(_, v)| match v {
                ArgValue::UInt(u) => Some(*u),
                ArgValue::Int(i) => u64::try_from(*i).ok(),
                _ => None,
            })
    }

    /// Looks up a string argument by name.
    pub fn arg_str(&self, name: &str) -> Option<&str> {
        self.args
            .iter()
            .find(|(n, _)| *n == name)
            .and_then(|(_, v)| match v {
                ArgValue::Str(s) => Some(s.as_str()),
                _ => None,
            })
    }
}

// ---------------------------------------------------------------------------
// sinks
// ---------------------------------------------------------------------------

/// Where emitted events go. Implementations must tolerate concurrent
/// `record` calls (the trait is `Sync`); the shipped [`Recorder`]
/// appends to a mutex-guarded vector.
pub trait TraceSink: Send + Sync + fmt::Debug {
    /// Records one event.
    fn record(&self, event: Event);

    /// Records a batch in order (single lock acquisition where the
    /// implementation allows).
    fn record_batch(&self, events: Vec<Event>) {
        for e in events {
            self.record(e);
        }
    }
}

/// The standard in-memory sink: an append-only event log the caller
/// drains after (or between) runs.
#[derive(Debug, Default)]
pub struct Recorder {
    events: Mutex<Vec<Event>>,
}

impl Recorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drains and returns everything recorded so far, in emission
    /// order. Used by the CLI to slice a multi-database run into
    /// per-database event groups.
    pub fn take(&self) -> Vec<Event> {
        std::mem::take(&mut *self.events.lock().expect("recorder poisoned"))
    }

    /// A copy of everything recorded so far, leaving the log intact.
    pub fn snapshot(&self) -> Vec<Event> {
        self.events.lock().expect("recorder poisoned").clone()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.lock().expect("recorder poisoned").len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl TraceSink for Recorder {
    fn record(&self, event: Event) {
        self.events.lock().expect("recorder poisoned").push(event);
    }

    fn record_batch(&self, mut events: Vec<Event>) {
        self.events
            .lock()
            .expect("recorder poisoned")
            .append(&mut events);
    }
}

// ---------------------------------------------------------------------------
// tracer
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct TracerInner {
    clock: Arc<dyn Clock>,
    sink: Arc<dyn TraceSink>,
}

/// The handle instrumentation sites hold: either disabled (`None`
/// inside — every operation is one branch) or an injected clock + sink
/// pair. Cloning is cheap (`Arc`), and clones share the sink, so the
/// engine can hand the same tracer to every worker thread.
#[derive(Clone, Debug, Default)]
pub struct Tracer {
    inner: Option<Arc<TracerInner>>,
}

impl Tracer {
    /// A tracer that records nothing and costs one branch per site.
    pub fn disabled() -> Self {
        Tracer { inner: None }
    }

    /// An enabled tracer over `sink`, timestamped by a
    /// [`MonotonicClock`] whose origin is now.
    pub fn new(sink: Arc<dyn TraceSink>) -> Self {
        Self::with_clock(sink, Arc::new(MonotonicClock::starting_now()))
    }

    /// An enabled tracer with an explicitly injected clock.
    pub fn with_clock(sink: Arc<dyn TraceSink>, clock: Arc<dyn Clock>) -> Self {
        Tracer {
            inner: Some(Arc::new(TracerInner { clock, sink })),
        }
    }

    /// Whether events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Current clock value; 0 when disabled (span starts taken while
    /// disabled produce no events, so the value is never observed).
    pub fn now_ns(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.clock.now_ns(),
            None => 0,
        }
    }

    /// Emits a completed span on `track` that started at `start_ns`
    /// (as returned by [`now_ns`](Tracer::now_ns)). `args` is only
    /// invoked when the tracer is enabled, so argument construction is
    /// free on the disabled path.
    pub fn emit_span(
        &self,
        cat: &'static str,
        name: &'static str,
        start_ns: u64,
        track: u32,
        args: impl FnOnce() -> Vec<(&'static str, ArgValue)>,
    ) {
        if let Some(inner) = &self.inner {
            let end = inner.clock.now_ns();
            inner.sink.record(Event {
                cat,
                name,
                start_ns,
                dur_ns: end.saturating_sub(start_ns),
                track,
                args: args(),
            });
        }
    }

    /// Emits an instant (zero-duration) event at the current time —
    /// used for end-of-run counter summaries.
    pub fn emit_instant(
        &self,
        cat: &'static str,
        name: &'static str,
        track: u32,
        args: impl FnOnce() -> Vec<(&'static str, ArgValue)>,
    ) {
        if let Some(inner) = &self.inner {
            let now = inner.clock.now_ns();
            inner.sink.record(Event {
                cat,
                name,
                start_ns: now,
                dur_ns: 0,
                track,
                args: args(),
            });
        }
    }

    /// Submits a batch of pre-built events (a worker's local buffer).
    /// Callers submit buffers in chunk order so the recorded stream is
    /// deterministic; a disabled tracer drops the batch.
    pub fn submit(&self, events: Vec<Event>) {
        if let Some(inner) = &self.inner {
            if !events.is_empty() {
                inner.sink.record_batch(events);
            }
        }
    }
}

/// Escapes a string for embedding in a JSON string literal (used by
/// both output writers; exposed for the CLI's hand-rolled JSON).
pub fn json_escape(s: &str) -> Cow<'_, str> {
    if !s.chars().any(|c| c == '"' || c == '\\' || c < '\u{20}') {
        return Cow::Borrowed(s);
    }
    let mut out = String::with_capacity(s.len() + 8);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if c < '\u{20}' => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    Cow::Owned(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manual_tracer() -> (Tracer, Arc<Recorder>, Arc<ManualClock>) {
        let rec = Arc::new(Recorder::new());
        let clock = Arc::new(ManualClock::new());
        let tracer = Tracer::with_clock(rec.clone(), clock.clone());
        (tracer, rec, clock)
    }

    #[test]
    fn disabled_tracer_records_nothing_and_skips_args() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        assert_eq!(t.now_ns(), 0);
        let start = t.now_ns();
        t.emit_span("eval", "stratum", start, 0, || {
            panic!("args closure must not run when disabled")
        });
        t.emit_instant("solver", "session", 0, || {
            panic!("args closure must not run when disabled")
        });
        t.submit(vec![]);
    }

    #[test]
    fn spans_carry_clock_time_and_args() {
        let (t, rec, clock) = manual_tracer();
        let start = t.now_ns();
        clock.advance(1500);
        t.emit_span("fixpoint", "rule-pass", start, 0, || {
            vec![("rule", 3usize.into()), ("head", "R".into())]
        });
        let events = rec.take();
        assert_eq!(events.len(), 1);
        let e = &events[0];
        assert_eq!((e.cat, e.name), ("fixpoint", "rule-pass"));
        assert_eq!(e.start_ns, 0);
        assert_eq!(e.dur_ns, 1500);
        assert_eq!(e.arg_u64("rule"), Some(3));
        assert_eq!(e.arg_str("head"), Some("R"));
        assert_eq!(e.arg_u64("missing"), None);
    }

    #[test]
    fn submit_preserves_batch_order() {
        let (t, rec, _clock) = manual_tracer();
        let mk = |i: u64| Event {
            cat: "worker",
            name: "chunk",
            start_ns: 0,
            dur_ns: 0,
            track: i as u32 + 1,
            args: vec![("chunk", i.into())],
        };
        t.emit_instant("eval", "setup", 0, Vec::new);
        t.submit(vec![mk(0), mk(1)]);
        t.submit(vec![mk(2)]);
        let order: Vec<Option<u64>> = rec.take().iter().map(|e| e.arg_u64("chunk")).collect();
        assert_eq!(order, vec![None, Some(0), Some(1), Some(2)]);
    }

    #[test]
    fn recorder_snapshot_keeps_log_take_drains() {
        let (t, rec, _clock) = manual_tracer();
        t.emit_instant("cli", "database", 0, Vec::new);
        assert_eq!(rec.snapshot().len(), 1);
        assert_eq!(rec.len(), 1);
        assert!(!rec.is_empty());
        assert_eq!(rec.take().len(), 1);
        assert!(rec.is_empty());
    }

    #[test]
    fn manual_clock_set_and_advance() {
        let c = ManualClock::new();
        assert_eq!(c.now_ns(), 0);
        c.advance(10);
        c.advance(5);
        assert_eq!(c.now_ns(), 15);
        c.set(7);
        assert_eq!(c.now_ns(), 7);
    }

    #[test]
    fn monotonic_clock_is_monotone() {
        let c = MonotonicClock::starting_now();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("l1\nl2\t"), "l1\\nl2\\t");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn tracer_clones_share_the_sink() {
        let (t, rec, _clock) = manual_tracer();
        let t2 = t.clone();
        t.emit_instant("eval", "run", 0, Vec::new);
        t2.emit_instant("eval", "run", 1, Vec::new);
        assert_eq!(rec.len(), 2);
    }
}
