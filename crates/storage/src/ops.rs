//! Relational-algebra operators over c-tables.
//!
//! These implement the "straightforward extension of SQL" the paper
//! recalls from the incomplete-database literature: each operator
//! manipulates both the data part (terms) and the condition part. The
//! fauré-log evaluation engine in `faure-core` drives most work through
//! [`Table::find_matches`] directly, but the standalone operators are
//! used by the update-rewrite machinery, the verifiers, and tests — and
//! they document the c-table algebra in executable form.

use crate::table::{Pattern, Table};
use faure_ctable::{CTuple, CVarRegistry, Schema};

/// Selection: rows matching the per-column patterns; each kept row's
/// condition is conjoined with its match condition `μ`.
pub fn select(reg: &CVarRegistry, table: &Table, pats: &[Pattern]) -> Table {
    let mut out = Table::new(table.schema.clone());
    for (idx, mu) in table.find_matches(reg, pats) {
        let row = table.row(idx);
        out.insert(CTuple {
            terms: row.terms.clone(),
            cond: row.cond.clone().and(mu),
        })
        .expect("selection preserves the input schema");
    }
    out
}

/// Projection onto the given column indices (duplicates merge their
/// conditions disjunctively, as c-table projection requires).
pub fn project(table: &Table, cols: &[usize], new_name: &str) -> Table {
    let schema = Schema {
        name: new_name.to_owned(),
        attrs: cols
            .iter()
            .map(|&c| table.schema.attrs[c].clone())
            .collect(),
    };
    let mut out = Table::new(schema);
    for row in table.iter() {
        out.insert(CTuple {
            terms: cols.iter().map(|&c| row.terms[c].clone()).collect(),
            cond: row.cond.clone(),
        })
        .expect("projection schema is built from the projected columns");
    }
    out
}

/// Natural-style join on explicit column pairs: concatenates each pair
/// of rows `t₁ ∈ a, t₂ ∈ b` with condition `φ₁ ∧ φ₂ ∧ φ(t₁,t₂)`, where
/// `φ(t₁,t₂)` equates the join attributes (exactly the paper's §3
/// description of the c-table join).
pub fn join(
    reg: &CVarRegistry,
    a: &Table,
    b: &Table,
    on: &[(usize, usize)],
    new_name: &str,
) -> Table {
    let mut attrs: Vec<String> = a.schema.attrs.clone();
    attrs.extend(b.schema.attrs.iter().cloned());
    let schema = Schema {
        name: new_name.to_owned(),
        attrs,
    };
    let mut out = Table::new(schema);
    for left in a.iter() {
        // Build a pattern for `b` fixing the join columns to the left
        // row's values — this exploits b's indexes.
        let mut pats = vec![Pattern::Any; b.schema.arity()];
        for &(la, lb) in on {
            pats[lb] = Pattern::Exact(left.terms[la].clone());
        }
        for (ridx, mu) in b.find_matches(reg, &pats) {
            let right = b.row(ridx);
            let mut terms = left.terms.clone();
            terms.extend(right.terms.iter().cloned());
            out.insert(CTuple {
                terms,
                cond: left.cond.clone().and(right.cond.clone()).and(mu),
            })
            .expect("join schema concatenates both input schemas");
        }
    }
    out
}

/// Union of two same-arity tables (conditions of equal-term rows merge
/// disjunctively via the table's dedup insert).
pub fn union(a: &Table, b: &Table, new_name: &str) -> Table {
    let schema = Schema {
        name: new_name.to_owned(),
        attrs: a.schema.attrs.clone(),
    };
    assert_eq!(a.schema.arity(), b.schema.arity(), "union arity mismatch");
    let mut out = Table::new(schema);
    for row in a.iter().chain(b.iter()) {
        out.insert(row.clone())
            .expect("union inputs were checked for equal arity");
    }
    out
}

/// C-table difference `a \ b`: every row of `a` survives with its
/// condition conjoined with `b`'s negation condition for its terms
/// ("present in `a` and not derivable from `b`").
pub fn difference(reg: &CVarRegistry, a: &Table, b: &Table, new_name: &str) -> Table {
    let schema = Schema {
        name: new_name.to_owned(),
        attrs: a.schema.attrs.clone(),
    };
    let mut out = Table::new(schema);
    for row in a.iter() {
        let not_in_b = b.negation_condition(reg, &row.terms);
        let cond = row.cond.clone().and(not_in_b);
        if cond != faure_ctable::Condition::False {
            out.insert(CTuple {
                terms: row.terms.clone(),
                cond,
            })
            .expect("difference preserves the left schema");
        }
    }
    out
}

/// Renames a table (schema name only).
pub fn rename(table: &Table, new_name: &str) -> Table {
    let mut out = table.clone();
    out.schema.name = new_name.to_owned();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use faure_ctable::{Condition, Const, Database, Domain, Term};

    fn setup() -> (CVarRegistry, faure_ctable::CVarId) {
        let mut db = Database::new();
        let x = db.fresh_cvar(
            "x",
            Domain::Consts(vec![Const::sym("1.2.3.4"), Const::sym("1.2.3.5")]),
        );
        (db.cvars, x)
    }

    fn table_p(reg_x: faure_ctable::CVarId) -> Table {
        // P(dest, path) like Table 2, simplified.
        let mut t = Table::new(Schema::new("P", &["dest", "path"]));
        t.insert(CTuple::new([Term::sym("1.2.3.4"), Term::sym("[ABC]")]))
            .unwrap();
        t.insert(CTuple::with_cond(
            [Term::Var(reg_x), Term::sym("[ABE]")],
            Condition::ne(Term::Var(reg_x), Term::sym("1.2.3.4")),
        ))
        .unwrap();
        t
    }

    fn table_c() -> Table {
        let mut t = Table::new(Schema::new("C", &["path", "cost"]));
        t.insert(CTuple::new([Term::sym("[ABC]"), Term::int(3)]))
            .unwrap();
        t.insert(CTuple::new([Term::sym("[ABE]"), Term::int(3)]))
            .unwrap();
        t
    }

    #[test]
    fn select_conjoins_match_condition() {
        let (reg, x) = setup();
        let t = table_p(x);
        let s = select(
            &reg,
            &t,
            &[Pattern::Exact(Term::sym("1.2.3.5")), Pattern::Any],
        );
        assert_eq!(s.len(), 1);
        // Row condition: (x̄ ≠ 1.2.3.4) ∧ (x̄ = 1.2.3.5)
        let expected = Condition::ne(Term::Var(x), Term::sym("1.2.3.4"))
            .and(Condition::eq(Term::Var(x), Term::sym("1.2.3.5")));
        assert!(faure_solver::equivalent(&reg, &s.row(0).cond, &expected).unwrap());
    }

    #[test]
    fn project_merges_duplicates() {
        let (_, _) = setup();
        let mut t = Table::new(Schema::new("T", &["a", "b"]));
        t.insert(CTuple::new([Term::int(1), Term::int(10)]))
            .unwrap();
        t.insert(CTuple::new([Term::int(1), Term::int(20)]))
            .unwrap();
        let p = project(&t, &[0], "Pa");
        assert_eq!(p.len(), 1);
        assert_eq!(p.schema.attrs, vec!["a".to_owned()]);
    }

    #[test]
    fn join_equates_join_attributes() {
        let (reg, x) = setup();
        let p = table_p(x);
        let c = table_c();
        // Join P.path = C.path (column 1 of P with column 0 of C).
        let j = join(&reg, &p, &c, &[(1, 0)], "PC");
        assert_eq!(j.schema.arity(), 4);
        // (1.2.3.4,[ABC]) joins ([ABC],3); (x̄,[ABE]) joins ([ABE],3).
        assert_eq!(j.len(), 2);
        for row in j.iter() {
            assert_eq!(row.terms[1], row.terms[2]); // equal constants here
        }
    }

    #[test]
    fn union_merges_conditions() {
        let (_, x) = setup();
        let mut a = Table::new(Schema::new("A", &["v"]));
        a.insert(CTuple::with_cond(
            [Term::int(1)],
            Condition::eq(Term::Var(x), Term::sym("1.2.3.4")),
        ))
        .unwrap();
        let mut b = Table::new(Schema::new("B", &["v"]));
        b.insert(CTuple::with_cond(
            [Term::int(1)],
            Condition::eq(Term::Var(x), Term::sym("1.2.3.5")),
        ))
        .unwrap();
        let u = union(&a, &b, "U");
        assert_eq!(u.len(), 1);
        assert!(matches!(u.row(0).cond, Condition::Or(_)));
    }

    #[test]
    fn difference_uses_negation_condition() {
        let (reg, x) = setup();
        let mut a = Table::new(Schema::new("A", &["v"]));
        a.insert(CTuple::new([Term::sym("1.2.3.4")])).unwrap();
        a.insert(CTuple::new([Term::sym("1.2.3.5")])).unwrap();
        let mut b = Table::new(Schema::new("B", &["v"]));
        b.insert(CTuple::new([Term::sym("1.2.3.4")])).unwrap(); // unconditional
        b.insert(CTuple::with_cond(
            [Term::Var(x)],
            Condition::eq(Term::Var(x), Term::sym("1.2.3.5")),
        ))
        .unwrap();
        let d = difference(&reg, &a, &b, "D");
        // 1.2.3.4 is unconditionally in b → dropped.
        // 1.2.3.5 matches b's var row under (x̄=1.2.3.5 ∧ x̄=1.2.3.5) →
        // survives with ¬(x̄=1.2.3.5 ∧ x̄=1.2.3.5).
        assert_eq!(d.len(), 1);
        assert_eq!(d.row(0).terms, vec![Term::sym("1.2.3.5")]);
        assert_ne!(d.row(0).cond, Condition::True);
    }

    #[test]
    fn rename_changes_only_name() {
        let (_, x) = setup();
        let t = table_p(x);
        let r = rename(&t, "Q");
        assert_eq!(r.schema.name, "Q");
        assert_eq!(r.len(), t.len());
    }
}
