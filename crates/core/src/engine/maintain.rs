//! Incremental maintenance of materialized c-table fixpoints.
//!
//! The paper's target workload is route churn: a standing analysis
//! absorbing a stream of RIB updates, not a batch re-evaluation per
//! snapshot. This module turns [`PreparedProgram`] from a run-once
//! evaluator into a maintainable view system:
//!
//! * [`MaterializedState`] holds everything a run used to rebuild from
//!   scratch — the per-predicate [`Table`]s (IDB *and* EDB), the
//!   resolved c-variable map, and the pooled solver memo — so it can
//!   outlive a single evaluation;
//! * [`Delta`] is a batch of EDB changes (`+tuple` inserts and
//!   [`DeletePattern`] deletes, mirroring the §5 Levy–Sagiv update
//!   semantics of [`crate::update`]);
//! * [`PreparedProgram::apply`] propagates a delta through the
//!   standing tables and returns a [`DeltaReport`].
//!
//! Batch evaluation is now literally "apply one big insert-delta to
//! empty state": [`PreparedProgram::run`] materializes empty tables
//! and applies [`Delta::from_database`]. The first (fresh) apply runs
//! the exact batch fixpoint drivers, so batch results, statistics and
//! trace streams are unchanged.
//!
//! ## Propagation strategy, per stratum
//!
//! Strata are revisited in order; each reads the pending change sets
//! produced below it and decides a mode:
//!
//! * **skip** — no rule reads a changed predicate: untouched.
//! * **append** (insertions only, no negation over changed
//!   predicates) — semi-naive delta passes seeded with the pending
//!   insertions, pinned to *any* positive body position whose
//!   predicate changed (EDB and lower-stratum slots included; their
//!   delta plans compile lazily through the shared [`PlanCache`]).
//!   No iteration-0 pass: standing rows already carry every old
//!   derivation, and the antichain condition representation absorbs
//!   the new disjuncts exactly — subsumed old disjuncts are evicted
//!   on merge, which is what a from-scratch run would have produced.
//! * **DRed / counting** (deletions or negation involved) —
//!   over-delete then re-derive. Suspect rows (head rows with a
//!   derivation reachable from a deleted or changed row, found by
//!   running the delta plans for taint detection against the *old*
//!   tables) are removed wholesale; survivors are exact, because
//!   every one of their derivations avoided the changed rows. Rules
//!   whose heads lost rows then re-run their full iteration-0 plans
//!   and the stratum iterates to fixpoint. On non-recursive strata
//!   ([`DeletionStrategy::Counting`]) the frontier empties after one
//!   round and the stored support counts gate whether re-derivation
//!   runs at all; recursive strata
//!   ([`DeletionStrategy::Rederive`]) chase the frontier to its
//!   transitive closure.
//!
//! A changed negated predicate can strengthen *or* weaken downstream
//! conditions without touching any term, so rules negating a changed
//! predicate over-delete their whole head and re-derive it.
//!
//! ## Upward propagation and certification
//!
//! After a stratum settles (changed rows pruned through
//! [`Table::prune_rows`]), each changed row is *certified* before
//! flowing upward: a merged row whose condition is still the
//! minimal-DNF antichain representation and was left untouched by the
//! prune propagates as just its new disjuncts (the cheap path — upper
//! antichains self-correct by subsumption). Anything else — opaque
//! conditions, prune-simplified conditions, removed rows — propagates
//! as delete-old-version + insert-new-version, pushing the upper
//! stratum onto the DRed path. This is what keeps incremental results
//! bit-identical (rows and canonicalized conditions) to a full
//! re-evaluation.
//!
//! ## Scope
//!
//! Deltas may only touch *EDB-only* relations (not rule heads): a
//! predicate that is both fact-seeded and derived stores its facts
//! and derivations merged in one table, so a table-level delete would
//! diverge from the update oracle. [`EvalError::InvalidDelta`] rejects
//! such deltas explicitly.

use super::rule::eval_rule;
use super::{fixpoint, shard};
use super::{resolve_cvars, Ctx, EvalError, EvalOptions, EvalOutput, PreparedProgram, PrunePolicy};
use crate::analysis::Finding;
use crate::ast::{Literal, Program, Rule};
use crate::plan::{DeletionStrategy, PlanCache};
use crate::update::{DeletePattern, Update};
use faure_ctable::{CTuple, CVarId, CVarRegistry, Const, Database, Relation, Schema, Term};
use faure_solver::{Session, SharedMemo};
use faure_storage::{PhaseStats, PreparedRow, Table};
use faure_trace::Tracer;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A batch of EDB changes: tuples to insert and patterns to delete.
///
/// Deletions apply first, then insertions — the order
/// [`crate::update::apply_to_database`] uses, so a `Delta` built
/// [from an update](Delta::from_update) has identical semantics.
/// Entries naming a relation absent from the database are skipped,
/// also mirroring the update oracle.
#[derive(Clone, Debug, Default)]
pub struct Delta {
    /// Tuples to insert (conditions allowed), in order.
    pub insert: Vec<(String, CTuple)>,
    /// Deletion patterns (per-column constants; `None` = wildcard).
    pub delete: Vec<(String, DeletePattern)>,
}

impl Delta {
    /// An empty delta.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the delta carries no changes.
    pub fn is_empty(&self) -> bool {
        self.insert.is_empty() && self.delete.is_empty()
    }

    /// Queues a tuple insertion.
    pub fn push_insert(&mut self, relation: impl Into<String>, tuple: CTuple) {
        self.insert.push((relation.into(), tuple));
    }

    /// Queues an unconditional fact insertion.
    pub fn push_insert_fact(
        &mut self,
        relation: impl Into<String>,
        row: impl IntoIterator<Item = Const>,
    ) {
        let terms: Vec<Term> = row.into_iter().map(Term::Const).collect();
        self.insert.push((relation.into(), CTuple::new(terms)));
    }

    /// Queues a pattern deletion.
    pub fn push_delete(&mut self, relation: impl Into<String>, pattern: DeletePattern) {
        self.delete.push((relation.into(), pattern));
    }

    /// Queues an exact-tuple deletion.
    pub fn push_delete_exact(
        &mut self,
        relation: impl Into<String>,
        row: impl IntoIterator<Item = Const>,
    ) {
        self.delete
            .push((relation.into(), DeletePattern::exact(row)));
    }

    /// The delta equivalent of one §5 [`Update`]: its deletions
    /// followed by its insertions, on the update's relation.
    pub fn from_update(update: &Update) -> Self {
        let mut delta = Delta::new();
        for d in &update.deletions {
            delta.push_delete(update.relation.clone(), d.clone());
        }
        for row in &update.insertions {
            delta.push_insert_fact(update.relation.clone(), row.iter().cloned());
        }
        delta
    }

    /// Every tuple of every relation in `db`, as one big insert-delta
    /// — the batch evaluation path applies this to empty state.
    pub fn from_database(db: &Database) -> Self {
        let mut delta = Delta::new();
        for rel in db.relations() {
            for tuple in rel.iter() {
                delta.push_insert(rel.schema.name.clone(), tuple.clone());
            }
        }
        delta
    }
}

/// What one [`PreparedProgram::apply`] call did.
#[derive(Clone, Debug, Default)]
pub struct DeltaReport {
    /// EDB insertions that changed state (new row or new disjunct).
    pub inserted: usize,
    /// EDB rows removed or weakened by the delta's deletions.
    pub deleted: usize,
    /// Derived rows removed during DRed over-deletion.
    pub overdeleted: usize,
    /// Derived rows (re)derived or strengthened by propagation.
    pub rederived: usize,
    /// Rows removed by the end-of-stratum prune over changed rows.
    pub pruned: usize,
    /// Strata that did any work.
    pub strata_touched: usize,
    /// Touched strata handled by the counting strategy.
    pub counting_strata: usize,
    /// Touched strata handled by DRed over-delete/re-derive.
    pub rederive_strata: usize,
    /// Delta rows after each propagation iteration, across strata.
    pub delta_sizes: Vec<usize>,
    /// Wall-clock time of the whole apply.
    pub wall: Duration,
    /// Full phase statistics for this apply (solver, plans, ops).
    pub stats: PhaseStats,
}

/// A standing evaluation: per-predicate tables, resolved c-variables,
/// and the pooled solver memo, kept alive between
/// [`Delta`] applications. Built by [`PreparedProgram::materialize`].
pub struct MaterializedState {
    pub(super) database: Database,
    pub(super) cvmap: HashMap<String, CVarId>,
    pub(super) reg_snapshot: CVarRegistry,
    pub(super) shared_memo: Arc<SharedMemo>,
    pub(super) tables: HashMap<String, Table>,
    pub(super) plans: PlanCache,
    pub(super) warnings: Vec<Finding>,
    pub(super) tracer: Tracer,
    pub(super) opts: EvalOptions,
    pub(super) started: Instant,
    pub(super) stats: PhaseStats,
    /// True until the first apply: the batch fixpoint path.
    pub(super) fresh: bool,
}

impl MaterializedState {
    /// Lint findings from materialization.
    pub fn warnings(&self) -> &[Finding] {
        &self.warnings
    }

    /// The standing database (original EDB relations plus registry;
    /// derived relations live in the tables until exported).
    pub fn database(&self) -> &Database {
        &self.database
    }

    /// The current contents of a predicate's table as a relation
    /// (EDB or derived), reflecting every delta applied so far.
    pub fn relation(&self, name: &str) -> Option<Relation> {
        self.tables.get(name).map(Table::to_relation)
    }

    /// Statistics of the most recent apply.
    pub fn stats(&self) -> &PhaseStats {
        &self.stats
    }

    /// Whether no delta has been applied yet.
    pub fn is_fresh(&self) -> bool {
        self.fresh
    }

    /// Consumes the state into the classic [`EvalOutput`]: the input
    /// database extended with every derived relation.
    pub(super) fn into_output(mut self, program: &Program) -> EvalOutput {
        let idb_names: Vec<String> = program
            .idb_predicates()
            .into_iter()
            .map(str::to_owned)
            .collect();
        self.tables
            .retain(|name, _| idb_names.iter().any(|p| p == name));
        let mut derived_tuples = 0usize;
        for p in &idb_names {
            let t = self.tables.remove(p).expect("table created in setup");
            derived_tuples += t.len();
            self.database.set_relation(t.into_relation());
        }
        let total = self.started.elapsed();
        self.stats.relational = total.saturating_sub(self.stats.solver);
        self.stats.tuples = derived_tuples;
        EvalOutput {
            database: self.database,
            stats: self.stats,
            warnings: self.warnings,
        }
    }
}

/// Per-predicate change tracking across one stratum's propagation.
#[derive(Default)]
struct ChangeLog {
    /// Old row version at first sight this apply (`None` = the row did
    /// not exist), keyed by terms. Captured *before* any merge.
    old: HashMap<Vec<Term>, Option<CTuple>>,
    /// Terms whose row actually changed (new row or new disjunct).
    dirty: BTreeSet<Vec<Term>>,
}

impl PreparedProgram {
    /// Builds a [`MaterializedState`] for `db` and brings it to the
    /// program's fixpoint (the batch evaluation, run through the
    /// one-big-insert-delta path). Subsequent [`apply`] calls maintain
    /// the fixpoint incrementally.
    ///
    /// [`apply`]: PreparedProgram::apply
    pub fn materialize(&self, db: &Database) -> Result<MaterializedState, EvalError> {
        self.materialize_with(db, &self.opts, &Tracer::disabled())
    }

    /// [`materialize`](PreparedProgram::materialize) with explicit
    /// options and tracing.
    pub fn materialize_with(
        &self,
        db: &Database,
        opts: &EvalOptions,
        tracer: &Tracer,
    ) -> Result<MaterializedState, EvalError> {
        let mut state = self.materialize_empty(db, opts, tracer)?;
        self.apply(&mut state, Delta::from_database(db))?;
        Ok(state)
    }

    /// The setup phase factored out of the old run-once path: lint,
    /// c-variable resolution, memo checkout, and *empty* table
    /// creation (EDB facts arrive via the first delta).
    pub(super) fn materialize_empty(
        &self,
        db: &Database,
        opts: &EvalOptions,
        tracer: &Tracer,
    ) -> Result<MaterializedState, EvalError> {
        let program = &self.program;
        let t_lint = tracer.now_ns();
        // Diagnostic pre-pass: collect lint warnings without affecting
        // evaluation. Findings are database-dependent (shadowed inputs,
        // arity against actual relations), so this runs per
        // materialization, not at prepare time.
        let warnings: Vec<Finding> = crate::analysis::analyze(program, Some(db))
            .into_iter()
            .filter(|f| !f.is_error())
            .collect();
        tracer.emit_span("eval", "lint", t_lint, 0, || {
            vec![("warnings", warnings.len().into())]
        });

        let t_setup = tracer.now_ns();
        let mut database = db.clone();
        let cvmap = resolve_cvars(program, &mut database);
        // Check out the pooled solver memo: reuse it when its registry
        // fingerprint still matches (batch mode — conditions decided in
        // earlier runs become cross-run hits), replace it otherwise.
        let shared_memo = {
            let mut pool = self.memo_pool.lock().expect("memo pool poisoned");
            match pool.as_ref() {
                Some(memo) if memo.matches_registry(&database.cvars) => Arc::clone(memo),
                _ => {
                    let memo = Arc::new(SharedMemo::for_registry(&database.cvars));
                    *pool = Some(Arc::clone(&memo));
                    memo
                }
            }
        };
        shared_memo.begin_run();
        let started = Instant::now();

        // Empty tables: EDB relations keep their declared schemas; any
        // predicate mentioned but absent gets an inferred one.
        let mut tables: HashMap<String, Table> = HashMap::new();
        for rel in database.relations() {
            tables.insert(rel.schema.name.clone(), Table::new(rel.schema.clone()));
        }
        for rule in &program.rules {
            for atom in std::iter::once(&rule.head).chain(rule.body.iter().map(Literal::atom)) {
                let arity = atom.args.len();
                match tables.get(&atom.pred) {
                    Some(t) if t.schema.arity() != arity => {
                        return Err(EvalError::ArityMismatch {
                            pred: atom.pred.clone(),
                            expected: t.schema.arity(),
                            got: arity,
                        });
                    }
                    Some(_) => {}
                    None => {
                        let attrs: Vec<String> = (0..arity).map(|i| format!("c{i}")).collect();
                        let schema = Schema {
                            name: atom.pred.clone(),
                            attrs,
                        };
                        tables.insert(atom.pred.clone(), Table::new(schema));
                    }
                }
            }
        }
        let reg_snapshot = database.cvars.clone();
        tracer.emit_span("eval", "setup", t_setup, 0, || {
            vec![("tables", tables.len().into())]
        });

        Ok(MaterializedState {
            database,
            cvmap,
            reg_snapshot,
            shared_memo,
            tables,
            plans: self.plans.fresh_counters(),
            warnings,
            tracer: tracer.clone(),
            opts: *opts,
            started,
            stats: PhaseStats::new(),
            fresh: true,
        })
    }

    /// Applies one delta to the standing state, maintaining every
    /// derived table at the program's fixpoint. The first apply on a
    /// fresh state runs the batch fixpoint drivers; later applies
    /// propagate incrementally as described in the module docs.
    pub fn apply(
        &self,
        state: &mut MaterializedState,
        delta: Delta,
    ) -> Result<DeltaReport, EvalError> {
        let program = &self.program;
        let tracer = state.tracer.clone();
        let opts = state.opts;
        let t_delta = tracer.now_ns();
        let wall = Instant::now();
        let fresh = state.fresh;
        if !fresh {
            state.shared_memo.begin_run();
        }
        let mut session = Session::with_shared(Arc::clone(&state.shared_memo));
        let mut stats = PhaseStats::new();
        let mut report = DeltaReport::default();
        let hits_base = state.plans.hits;
        let miss_base = state.plans.misses;

        let idb: BTreeSet<&str> = program.idb_predicates();

        // --- phase A: apply the delta to the EDB tables ---------------
        // Pending change sets flowing upward through the strata: new
        // disjuncts / new rows per predicate, and old versions of
        // removed or rewritten rows.
        let mut pend_ins: BTreeMap<String, Table> = BTreeMap::new();
        let mut pend_del: BTreeMap<String, Vec<CTuple>> = BTreeMap::new();

        for (rel_name, pattern) in &delta.delete {
            if idb.contains(rel_name.as_str()) {
                return Err(EvalError::InvalidDelta(format!(
                    "cannot delete from `{rel_name}`: it is derived by rules \
                     (facts and derivations share one table)"
                )));
            }
            // Mirror `update::apply_to_database`: absent relation = no-op.
            if state.database.relation(rel_name).is_none() {
                continue;
            }
            let table = state
                .tables
                .get_mut(rel_name)
                .expect("every database relation has a table");
            if pattern.cols.len() != table.schema.arity() {
                return Err(EvalError::ArityMismatch {
                    pred: rel_name.clone(),
                    expected: table.schema.arity(),
                    got: pattern.cols.len(),
                });
            }
            if pattern.cols.iter().all(Option::is_none) {
                return Err(EvalError::InvalidDelta(format!(
                    "unconstrained deletion pattern on `{rel_name}`"
                )));
            }
            let eff = table.delete_where(&pattern.cols);
            report.deleted += eff.removed.len() + eff.weakened.len();
            if !eff.is_empty() {
                let e = pend_del.entry(rel_name.clone()).or_default();
                e.extend(eff.removed);
                e.extend(eff.weakened);
            }
        }
        for (rel_name, tuple) in &delta.insert {
            if !fresh {
                if idb.contains(rel_name.as_str()) {
                    return Err(EvalError::InvalidDelta(format!(
                        "cannot insert into `{rel_name}`: it is derived by rules \
                         (facts and derivations share one table)"
                    )));
                }
                if state.database.relation(rel_name).is_none() {
                    continue;
                }
            }
            let Some(table) = state.tables.get_mut(rel_name) else {
                continue;
            };
            let old = if fresh {
                None
            } else {
                table.find_row(&tuple.terms).map(|i| table.row(i))
            };
            let outcome = table.insert(tuple.clone())?;
            if outcome.changed() {
                report.inserted += 1;
                if !fresh {
                    let idx = table.find_row(&tuple.terms).expect("just inserted");
                    let schema = table.schema.clone();
                    match old {
                        // Merged into an antichain: the tuple's own
                        // condition is exactly the new disjunct set.
                        Some(_) if table.has_sets_repr(idx) => {
                            push_ins(&mut pend_ins, rel_name, &schema, tuple.clone());
                        }
                        // Opaque merge: propagate delete-old + insert-new.
                        Some(old_row) => {
                            pend_del.entry(rel_name.clone()).or_default().push(old_row);
                            push_ins(&mut pend_ins, rel_name, &schema, table.row(idx));
                        }
                        // New row: its stored (normalised) version.
                        None => push_ins(&mut pend_ins, rel_name, &schema, table.row(idx)),
                    }
                }
            }
        }

        // --- fresh path: the exact batch fixpoint ---------------------
        if fresh {
            state.fresh = false;
            self.run_batch_strata(state, &mut session, &mut stats)?;
            finalize_apply(
                self,
                state,
                session,
                &mut stats,
                &mut report,
                program,
                wall,
                hits_base,
                miss_base,
            );
            report.rederived = stats.tuples;
            report.delta_sizes = stats.delta_sizes.clone();
            report.pruned = stats.pruned;
            report.strata_touched = self.strat.strata.len();
            publish_finished_apply(&report, true);
            return Ok(report);
        }

        // --- incremental path -----------------------------------------
        let mut changed_preds: BTreeSet<String> =
            pend_ins.keys().chain(pend_del.keys()).cloned().collect();

        let ctx = Ctx {
            cvmap: &state.cvmap,
            reg_snapshot: state.reg_snapshot.clone(),
            shared_memo: Arc::clone(&state.shared_memo),
            tracer: tracer.clone(),
            shard_plan: self.shard_plan.clone(),
        };
        let tables = &mut state.tables;
        let plans = &mut state.plans;

        for (si, stratum_rules) in self.strat.strata.iter().enumerate() {
            let rules: Vec<(usize, &Rule)> = stratum_rules
                .iter()
                .map(|&i| (i, &program.rules[i]))
                .collect();
            let head_preds: BTreeSet<&str> =
                rules.iter().map(|(_, r)| r.head.pred.as_str()).collect();
            let reads_changed = rules.iter().any(|(_, r)| {
                r.body
                    .iter()
                    .any(|l| changed_preds.contains(l.atom().pred.as_str()))
            });
            if !reads_changed {
                continue;
            }
            report.strata_touched += 1;
            let t_stratum = tracer.now_ns();

            // Bit-identity gate: in-place delta propagation derives
            // rows through join orders batch evaluation never runs
            // (its plans pin the delta literal first), and condition
            // atoms record the *binding chain* — `a` bound to a
            // c-variable cell then matched against `2` yields `v̄ = 2`,
            // while the reverse order yields ground atoms that fold.
            // Over var-free cells every match condition is ground, so
            // the derived rows are order-independent and the fast path
            // is exact. Any c-variable cell in the stratum's tables or
            // in a deleted row forces recomputation of the whole
            // stratum through the batch loop, which is bit-identical
            // by construction.
            if !stratum_order_safe(&rules, tables, &pend_del) {
                report.rederive_strata += 1;
                let changed_rows = recompute_stratum(
                    &ctx,
                    si,
                    &rules,
                    tables,
                    plans,
                    &mut session,
                    &opts,
                    &mut stats,
                    &mut report,
                    &mut pend_ins,
                    &mut pend_del,
                    &mut changed_preds,
                )?;
                super::publish::publish_maintain_stratum("recompute", changed_rows);
                tracer.emit_span("maintain", "stratum", t_stratum, 0, || {
                    vec![
                        ("stratum", si.into()),
                        ("mode", "recompute".into()),
                        ("changed", changed_rows.into()),
                    ]
                });
                continue;
            }

            let del_relevant = rules.iter().any(|(_, r)| {
                r.body
                    .iter()
                    .any(|l| !l.is_negative() && pend_del.contains_key(l.atom().pred.as_str()))
            });
            let neg_involved = rules.iter().any(|(_, r)| {
                r.body
                    .iter()
                    .any(|l| l.is_negative() && changed_preds.contains(l.atom().pred.as_str()))
            });

            let mut changed: BTreeMap<String, ChangeLog> = BTreeMap::new();
            let mut outbound: BTreeMap<String, Table> = BTreeMap::new();
            let mut removed_old: BTreeMap<String, Vec<CTuple>> = BTreeMap::new();

            // Seed the propagation delta: pending insertions on every
            // predicate some rule reads positively.
            let mut seed: HashMap<String, Table> = HashMap::new();
            for (_, rule) in &rules {
                for lit in &rule.body {
                    if lit.is_negative() {
                        continue;
                    }
                    let p = lit.atom().pred.as_str();
                    if !seed.contains_key(p) {
                        if let Some(t) = pend_ins.get(p) {
                            seed.insert(p.to_owned(), t.clone());
                        }
                    }
                }
            }

            let mode;
            let mut iter0: BTreeSet<String> = BTreeSet::new();
            if del_relevant || neg_involved {
                mode = match self
                    .maint
                    .strategies
                    .get(*head_preds.iter().next().unwrap_or(&""))
                {
                    Some(DeletionStrategy::Counting) => "counting",
                    _ => "rederive",
                };
                if self.maint.recursive_strata.get(si) == Some(&false) {
                    report.counting_strata += 1;
                } else {
                    report.rederive_strata += 1;
                }

                // 1. Suspects: rows of negation-affected heads, plus
                // everything derivation-reachable from deleted rows.
                let mut suspects: BTreeMap<String, BTreeSet<usize>> = BTreeMap::new();
                let mut frontier: HashMap<String, Table> = HashMap::new();
                for (_, rule) in &rules {
                    let negated = rule
                        .body
                        .iter()
                        .any(|l| l.is_negative() && changed_preds.contains(l.atom().pred.as_str()));
                    if negated {
                        let h = rule.head.pred.as_str();
                        // Negation can also *unlock* brand-new rows, so
                        // these rules always re-run iteration 0.
                        iter0.insert(h.to_owned());
                        let ht = tables.get(h).expect("table created in setup");
                        let set = suspects.entry(h.to_owned()).or_default();
                        let f = frontier
                            .entry(h.to_owned())
                            .or_insert_with(|| Table::new(ht.schema.clone()));
                        for i in 0..ht.len() {
                            if set.insert(i) {
                                f.insert(ht.row(i)).expect("same schema");
                            }
                        }
                    }
                }
                for (p, old_rows) in &pend_del {
                    let read = rules.iter().any(|(_, r)| {
                        r.body
                            .iter()
                            .any(|l| !l.is_negative() && l.atom().pred.as_str() == p.as_str())
                    });
                    if !read {
                        continue;
                    }
                    let schema = tables.get(p.as_str()).expect("table exists").schema.clone();
                    let f = frontier
                        .entry(p.clone())
                        .or_insert_with(|| Table::new(schema));
                    for row in old_rows {
                        f.insert(row.clone()).expect("old rows match their schema");
                    }
                }

                // 2. Over-delete rounds: taint detection by terms, run
                // against the *old* (pre-removal) tables. Prune must be
                // off here — an eagerly-skipped unsatisfiable candidate
                // would hide a taint. Deleted rows were already removed
                // or weakened from their tables in phase A, but a
                // derivation can use the same deleted row at *two* join
                // positions (only one of which is the delta slot), so
                // the old versions are temporarily unioned back in —
                // taint detection is term-level, so merged conditions
                // are irrelevant — and the tables restored afterwards.
                let od_opts = EvalOptions {
                    prune: PrunePolicy::Never,
                    ..opts
                };
                let mut saved_tables: Vec<(String, Table)> = Vec::new();
                for (p, old_rows) in &pend_del {
                    if !frontier.contains_key(p) {
                        continue;
                    }
                    let t = tables.get_mut(p.as_str()).expect("table exists");
                    saved_tables.push((p.clone(), t.clone()));
                    for row in old_rows {
                        t.insert(row.clone()).expect("old rows match their schema");
                    }
                }
                let t_od = tracer.now_ns();
                let mut rounds = 0usize;
                while !frontier.is_empty() {
                    rounds += 1;
                    if rounds > opts.max_iterations {
                        return Err(EvalError::IterationLimit {
                            limit: opts.max_iterations,
                        });
                    }
                    let mut next: HashMap<String, Table> = HashMap::new();
                    for &(ri, rule) in &rules {
                        for &pos in &self.maint.delta_positions[ri] {
                            let p = rule.body[pos].atom().pred.as_str();
                            let Some(d) = frontier.get(p) else { continue };
                            if d.is_empty() {
                                continue;
                            }
                            let plan = plans.get_or_compile(ri, rule, Some(pos));
                            let derived = eval_rule(
                                &ctx,
                                ri,
                                rule,
                                plan,
                                tables,
                                Some(d),
                                &mut session,
                                &od_opts,
                                &mut stats.ops,
                            )?;
                            let h = rule.head.pred.as_str();
                            let ht = tables.get(h).expect("table created in setup");
                            let set = suspects.entry(h.to_owned()).or_default();
                            for prow in derived.iter().flatten() {
                                if let Some(idx) = ht.find_row(prow.terms()) {
                                    if set.insert(idx) {
                                        next.entry(h.to_owned())
                                            .or_insert_with(|| Table::new(ht.schema.clone()))
                                            .insert(ht.row(idx))
                                            .expect("same schema");
                                    }
                                }
                            }
                        }
                    }
                    frontier = next;
                }
                for (p, t) in saved_tables {
                    tables.insert(p, t);
                }

                // 3. Physically remove every suspect; removed heads
                // re-run their full iteration-0 plans.
                for (p, idxs) in &suspects {
                    if idxs.is_empty() {
                        continue;
                    }
                    let t = tables.get_mut(p.as_str()).expect("table exists");
                    let sorted: Vec<usize> = idxs.iter().copied().collect();
                    let old_rows = t.remove_rows(&sorted);
                    report.overdeleted += old_rows.len();
                    iter0.insert(p.clone());
                    removed_old.insert(p.clone(), old_rows);
                }
                let overdeleted = report.overdeleted;
                tracer.emit_span("maintain", "rederive", t_od, 0, || {
                    vec![
                        ("stratum", si.into()),
                        ("rounds", rounds.into()),
                        ("overdeleted", overdeleted.into()),
                    ]
                });
            } else {
                mode = "append";
            }

            // 4. Propagate to fixpoint: iteration-0 full passes for
            // re-derived heads, then semi-naive delta passes pinned to
            // every changed body position.
            stratum_fixpoint(
                &ctx,
                &rules,
                &self.maint.delta_positions,
                &iter0,
                seed,
                tables,
                plans,
                &mut session,
                &opts,
                &mut stats,
                &mut report,
                &mut changed,
                &mut outbound,
            )?;

            // 5. Settle: prune changed rows, certify, and queue the
            // upward change sets.
            settle_stratum(
                &ctx,
                &opts,
                tables,
                &mut session,
                &mut stats,
                &mut report,
                &changed,
                &outbound,
                &removed_old,
                &mut pend_ins,
                &mut pend_del,
                &mut changed_preds,
            )?;

            let changed_rows: usize = changed.values().map(|l| l.dirty.len()).sum();
            super::publish::publish_maintain_stratum(mode, changed_rows);
            tracer.emit_span("maintain", "stratum", t_stratum, 0, || {
                vec![
                    ("stratum", si.into()),
                    ("mode", mode.into()),
                    ("changed", changed_rows.into()),
                ]
            });
        }

        finalize_apply(
            self,
            state,
            session,
            &mut stats,
            &mut report,
            program,
            wall,
            hits_base,
            miss_base,
        );
        let (ins, del, od, rd) = (
            report.inserted,
            report.deleted,
            report.overdeleted,
            report.rederived,
        );
        let wall_ns = u64::try_from(report.wall.as_nanos()).unwrap_or(u64::MAX);
        publish_finished_apply(&report, false);
        tracer.emit_span("maintain", "delta", t_delta, 0, || {
            vec![
                ("inserted", ins.into()),
                ("deleted", del.into()),
                ("overdeleted", od.into()),
                ("rederived", rd.into()),
                ("wall_ns", wall_ns.into()),
            ]
        });
        Ok(report)
    }

    /// The batch stratum loop, bit-for-bit the old run-once path:
    /// naive or semi-naive fixpoint per stratum, then whole-table
    /// pruning in deterministic predicate order.
    fn run_batch_strata(
        &self,
        state: &mut MaterializedState,
        session: &mut Session,
        stats: &mut PhaseStats,
    ) -> Result<(), EvalError> {
        let program = &self.program;
        let opts = state.opts;
        let tracer = state.tracer.clone();
        let ctx = Ctx {
            cvmap: &state.cvmap,
            reg_snapshot: state.reg_snapshot.clone(),
            shared_memo: Arc::clone(&state.shared_memo),
            tracer: tracer.clone(),
            shard_plan: self.shard_plan.clone(),
        };
        let tables = &mut state.tables;
        let plans = &mut state.plans;
        for (stratum_idx, stratum_rules) in self.strat.strata.iter().enumerate() {
            let rules: Vec<(usize, &Rule)> = stratum_rules
                .iter()
                .map(|&i| (i, &program.rules[i]))
                .collect();
            run_one_stratum(
                &ctx,
                stratum_idx,
                &rules,
                tables,
                plans,
                session,
                &opts,
                stats,
            )?;
        }
        Ok(())
    }
}

/// One stratum of the batch fixpoint: naive or semi-naive iteration
/// over the current tables, then whole-table pruning in deterministic
/// predicate order. This is the unit shared by the fresh-materialize
/// path and the maintenance recomputation fallback, so both produce
/// bit-identical tables and trace spans for the same inputs.
#[allow(clippy::too_many_arguments)]
fn run_one_stratum(
    ctx: &Ctx<'_>,
    stratum_idx: usize,
    rules: &[(usize, &Rule)],
    tables: &mut HashMap<String, Table>,
    plans: &mut PlanCache,
    session: &mut Session,
    opts: &EvalOptions,
    stats: &mut PhaseStats,
) -> Result<(), EvalError> {
    let tracer = &ctx.tracer;
    let t_stratum = tracer.now_ns();
    let stratum_preds: BTreeSet<&str> = rules.iter().map(|(_, r)| r.head.pred.as_str()).collect();

    if opts.semi_naive && opts.shards > 1 {
        shard::eval_stratum_sharded(
            ctx,
            rules,
            &stratum_preds,
            tables,
            plans,
            session,
            opts,
            stats,
        )?;
    } else if opts.semi_naive {
        fixpoint::eval_stratum_semi_naive(
            ctx,
            rules,
            &stratum_preds,
            tables,
            plans,
            session,
            opts,
            stats,
        )?;
    } else {
        fixpoint::eval_stratum_naive(ctx, rules, tables, plans, session, opts, stats)?;
    }

    if matches!(
        opts.prune,
        PrunePolicy::EndOfStratum | PrunePolicy::EveryIteration
    ) {
        // `stratum_preds` is a BTreeSet, so prune order — and
        // therefore the trace event stream — is deterministic.
        for p in &stratum_preds {
            let t_prune = tracer.now_ns();
            let t = tables.get_mut(*p).expect("table created above");
            let rows = t.len();
            let wall = Instant::now();
            let removed = if opts.threads > 1 {
                t.prune_parallel(&ctx.reg_snapshot, session, &ctx.shared_memo, opts.threads)?
            } else {
                t.prune(&ctx.reg_snapshot, session)?
            };
            stats.prune_wall += wall.elapsed();
            stats.pruned += removed;
            super::publish::publish_prune(rows, removed);
            tracer.emit_span("eval", "prune", t_prune, 0, || {
                vec![
                    ("pred", (*p).into()),
                    ("rows", rows.into()),
                    ("removed", removed.into()),
                    ("threads", opts.threads.into()),
                ]
            });
        }
    }
    let rule_count = rules.len();
    tracer.emit_span("eval", "stratum", t_stratum, 0, || {
        vec![
            ("stratum", stratum_idx.into()),
            ("rules", rule_count.into()),
        ]
    });
    Ok(())
}

/// Whether every table a stratum touches (head and body predicates) is
/// free of c-variable *cells*, and every pending deleted row has ground
/// terms. Under this condition the in-place delta passes derive exactly
/// the rows and conditions batch evaluation would, regardless of join
/// order (see the gate comment in [`PreparedProgram::apply`]).
fn stratum_order_safe(
    rules: &[(usize, &Rule)],
    tables: &HashMap<String, Table>,
    pend_del: &BTreeMap<String, Vec<CTuple>>,
) -> bool {
    let mut preds: BTreeSet<&str> = BTreeSet::new();
    for (_, rule) in rules {
        preds.insert(rule.head.pred.as_str());
        for lit in &rule.body {
            preds.insert(lit.atom().pred.as_str());
        }
    }
    preds.iter().all(|p| {
        tables.get(*p).is_none_or(|t| !t.has_var_cells())
            && pend_del.get(*p).is_none_or(|rows| {
                rows.iter()
                    .all(|r| r.terms.iter().all(|t| matches!(t, Term::Const(_))))
            })
    })
}

/// Maintenance fallback for order-sensitive strata: drains the head
/// tables, re-runs the batch stratum loop on the (already updated)
/// inputs, and diffs old against new to queue the upward change sets.
/// Inputs are bit-identical to what a from-scratch batch run would see
/// at this stratum, so the recomputed tables are too. Returns the
/// number of rows that differ.
#[allow(clippy::too_many_arguments)]
fn recompute_stratum(
    ctx: &Ctx<'_>,
    si: usize,
    rules: &[(usize, &Rule)],
    tables: &mut HashMap<String, Table>,
    plans: &mut PlanCache,
    session: &mut Session,
    opts: &EvalOptions,
    stats: &mut PhaseStats,
    report: &mut DeltaReport,
    pend_ins: &mut BTreeMap<String, Table>,
    pend_del: &mut BTreeMap<String, Vec<CTuple>>,
    changed_preds: &mut BTreeSet<String>,
) -> Result<usize, EvalError> {
    let head_preds: BTreeSet<&str> = rules.iter().map(|(_, r)| r.head.pred.as_str()).collect();
    let mut old: BTreeMap<String, Table> = BTreeMap::new();
    for p in &head_preds {
        let t = tables.get_mut(*p).expect("table created in setup");
        let empty = Table::new(t.schema.clone());
        old.insert((*p).to_owned(), std::mem::replace(t, empty));
    }
    run_one_stratum(ctx, si, rules, tables, plans, session, opts, stats)?;

    let mut changed_rows = 0usize;
    for (p, old_t) in &old {
        let new_t = tables.get(p.as_str()).expect("table created in setup");
        let schema = new_t.schema.clone();
        report.rederived += new_t.len();
        let mut ins: Vec<CTuple> = Vec::new();
        let mut del: Vec<CTuple> = Vec::new();
        for i in 0..old_t.len() {
            let row = old_t.row(i);
            match new_t.find_row(&row.terms) {
                // Unchanged: pooled ids are hash-consed, so equal ids
                // mean equal conditions.
                Some(j) if new_t.cond_id(j) == old_t.cond_id(i) => {}
                Some(j) => {
                    del.push(row);
                    ins.push(new_t.row(j));
                }
                None => {
                    report.overdeleted += 1;
                    del.push(row);
                }
            }
        }
        for j in 0..new_t.len() {
            let row = new_t.row(j);
            if old_t.find_row(&row.terms).is_none() {
                ins.push(row);
            }
        }
        changed_rows += ins.len() + del.len();
        if !ins.is_empty() || !del.is_empty() {
            changed_preds.insert(p.clone());
        }
        for row in ins {
            push_ins(pend_ins, p, &schema, row);
        }
        if !del.is_empty() {
            pend_del.entry(p.clone()).or_default().extend(del);
        }
    }
    Ok(changed_rows)
}

/// Appends a row to a pending-insertion table, creating it on demand.
fn push_ins(pend_ins: &mut BTreeMap<String, Table>, pred: &str, schema: &Schema, row: CTuple) {
    pend_ins
        .entry(pred.to_owned())
        .or_insert_with(|| Table::new(schema.clone()))
        .insert(row)
        .expect("pending rows match their table's schema");
}

/// Merges derived partitions into the full table, capturing old row
/// versions at first sight and recording every actually-changed row in
/// the change log, the next-iteration delta, and the per-stratum
/// outbound table (new disjuncts only — `insert_prepared` reuses the
/// normalised condition).
fn merge_tracked(
    pred: &str,
    derived: Vec<Vec<PreparedRow>>,
    tables: &mut HashMap<String, Table>,
    next_delta: &mut HashMap<String, Table>,
    changed: &mut BTreeMap<String, ChangeLog>,
    outbound: &mut BTreeMap<String, Table>,
) -> Result<(), EvalError> {
    if derived.iter().all(Vec::is_empty) {
        return Ok(());
    }
    let table = tables.get_mut(pred).expect("table created in setup");
    let log = changed.entry(pred.to_owned()).or_default();
    for prow in derived.iter().flatten() {
        if !log.old.contains_key(prow.terms()) {
            let old = table.find_row(prow.terms()).map(|i| table.row(i));
            log.old.insert(prow.terms().to_vec(), old);
        }
    }
    let schema = table.schema.clone();
    let ob = outbound
        .entry(pred.to_owned())
        .or_insert_with(|| Table::new(schema.clone()));
    table.absorb_partitions(derived, |prow| {
        log.dirty.insert(prow.terms().to_vec());
        next_delta
            .entry(pred.to_owned())
            .or_insert_with(|| Table::new(schema.clone()))
            .insert_prepared(prow)
            .expect("delta schema matches the full table");
        ob.insert_prepared(prow)
            .expect("outbound schema matches the full table");
    })?;
    Ok(())
}

/// One stratum's incremental fixpoint: optional iteration-0 full
/// passes for re-derived heads, then semi-naive delta passes pinned to
/// every positive body position whose predicate has a pending delta —
/// EDB and lower-stratum slots included (their plans compile lazily).
#[allow(clippy::too_many_arguments)]
fn stratum_fixpoint(
    ctx: &Ctx<'_>,
    rules: &[(usize, &Rule)],
    delta_positions: &[Vec<usize>],
    iter0: &BTreeSet<String>,
    mut delta: HashMap<String, Table>,
    tables: &mut HashMap<String, Table>,
    plans: &mut PlanCache,
    session: &mut Session,
    opts: &EvalOptions,
    stats: &mut PhaseStats,
    report: &mut DeltaReport,
    changed: &mut BTreeMap<String, ChangeLog>,
    outbound: &mut BTreeMap<String, Table>,
) -> Result<(), EvalError> {
    if !iter0.is_empty() {
        for &(ri, rule) in rules {
            if !iter0.contains(rule.head.pred.as_str()) {
                continue;
            }
            let plan = plans.get_or_compile(ri, rule, None);
            let derived = eval_rule(
                ctx,
                ri,
                rule,
                plan,
                tables,
                None,
                session,
                opts,
                &mut stats.ops,
            )?;
            merge_tracked(
                rule.head.pred.as_str(),
                derived,
                tables,
                &mut delta,
                changed,
                outbound,
            )?;
        }
    }
    record_delta(&delta, stats, report);
    let mut iterations = 0usize;
    while !delta.is_empty() {
        iterations += 1;
        if iterations > opts.max_iterations {
            return Err(EvalError::IterationLimit {
                limit: opts.max_iterations,
            });
        }
        let mut next_delta: HashMap<String, Table> = HashMap::new();
        for &(ri, rule) in rules {
            for &pos in &delta_positions[ri] {
                let p = rule.body[pos].atom().pred.as_str();
                let Some(d) = delta.get(p) else { continue };
                if d.is_empty() {
                    continue;
                }
                let plan = plans.get_or_compile(ri, rule, Some(pos));
                let derived = eval_rule(
                    ctx,
                    ri,
                    rule,
                    plan,
                    tables,
                    Some(d),
                    session,
                    opts,
                    &mut stats.ops,
                )?;
                merge_tracked(
                    rule.head.pred.as_str(),
                    derived,
                    tables,
                    &mut next_delta,
                    changed,
                    outbound,
                )?;
            }
        }
        delta = next_delta;
        record_delta(&delta, stats, report);
    }
    Ok(())
}

fn record_delta(delta: &HashMap<String, Table>, stats: &mut PhaseStats, report: &mut DeltaReport) {
    let total: usize = delta.values().map(Table::len).sum();
    if total > 0 {
        stats.delta_sizes.push(total);
        report.delta_sizes.push(total);
    }
}

/// End-of-stratum settlement: prune the changed rows, then certify
/// each one and queue the upward change sets (see the module docs).
#[allow(clippy::too_many_arguments)]
fn settle_stratum(
    ctx: &Ctx<'_>,
    opts: &EvalOptions,
    tables: &mut HashMap<String, Table>,
    session: &mut Session,
    stats: &mut PhaseStats,
    report: &mut DeltaReport,
    changed: &BTreeMap<String, ChangeLog>,
    outbound: &BTreeMap<String, Table>,
    removed_old: &BTreeMap<String, Vec<CTuple>>,
    pend_ins: &mut BTreeMap<String, Table>,
    pend_del: &mut BTreeMap<String, Vec<CTuple>>,
    changed_preds: &mut BTreeSet<String>,
) -> Result<(), EvalError> {
    // Old versions of removed rows always flow upward as deletions
    // (re-derived replacements flow as insertions below).
    for (p, old_rows) in removed_old {
        if old_rows.is_empty() {
            continue;
        }
        pend_del
            .entry(p.clone())
            .or_default()
            .extend(old_rows.iter().cloned());
        changed_preds.insert(p.clone());
    }

    for (p, log) in changed {
        if log.dirty.is_empty() {
            continue;
        }
        report.rederived += log.dirty.len();
        let table = tables.get_mut(p.as_str()).expect("table created in setup");
        let schema = table.schema.clone();

        // Pre-prune condition ids per changed row: certification
        // requires the prune to have left the condition untouched.
        let mut pre_ids: HashMap<&Vec<Term>, faure_ctable::CondId> = HashMap::new();
        let mut idxs: Vec<usize> = Vec::with_capacity(log.dirty.len());
        for terms in &log.dirty {
            if let Some(idx) = table.find_row(terms) {
                pre_ids.insert(terms, table.cond_id(idx));
                idxs.push(idx);
            }
        }
        if matches!(
            opts.prune,
            PrunePolicy::EndOfStratum | PrunePolicy::EveryIteration
        ) && !idxs.is_empty()
        {
            let t_prune = ctx.tracer.now_ns();
            let rows = idxs.len();
            let wall = Instant::now();
            let removed = table.prune_rows(&ctx.reg_snapshot, session, &idxs)?;
            stats.prune_wall += wall.elapsed();
            stats.pruned += removed;
            report.pruned += removed;
            super::publish::publish_prune(rows, removed);
            ctx.tracer.emit_span("eval", "prune", t_prune, 0, || {
                vec![
                    ("pred", p.as_str().into()),
                    ("rows", rows.into()),
                    ("removed", removed.into()),
                    ("threads", 1usize.into()),
                ]
            });
        }

        let ob = outbound.get(p);
        for terms in &log.dirty {
            let old = log.old.get(terms).cloned().flatten();
            match table.find_row(terms) {
                None => {
                    // Died (pruned away). If it existed before this
                    // apply, upper strata must forget its old version.
                    if let Some(old_row) = old {
                        pend_del.entry(p.clone()).or_default().push(old_row);
                        changed_preds.insert(p.clone());
                    }
                }
                Some(idx) => {
                    changed_preds.insert(p.clone());
                    match old {
                        None => {
                            // New row: final (pruned) version upward.
                            push_ins(pend_ins, p, &schema, table.row(idx));
                        }
                        Some(old_row) => {
                            let certified = table.has_sets_repr(idx)
                                && pre_ids.get(terms).copied() == Some(table.cond_id(idx));
                            if certified {
                                // Pure antichain append: only the new
                                // disjuncts travel upward.
                                let ob_row = ob
                                    .and_then(|t| t.find_row(terms).map(|i| t.row(i)))
                                    .expect("dirty rows were recorded in outbound");
                                push_ins(pend_ins, p, &schema, ob_row);
                            } else {
                                pend_del.entry(p.clone()).or_default().push(old_row);
                                push_ins(pend_ins, p, &schema, table.row(idx));
                            }
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

/// Shared tail of every apply: solver/plan statistics and report
/// totals.
#[allow(clippy::too_many_arguments)]
fn finalize_apply(
    prepared: &PreparedProgram,
    state: &mut MaterializedState,
    session: Session,
    stats: &mut PhaseStats,
    report: &mut DeltaReport,
    program: &Program,
    wall: Instant,
    hits_base: u64,
    miss_base: u64,
) {
    let total = wall.elapsed();
    let solver_time = session.stats().time;
    stats.relational = total.saturating_sub(solver_time);
    stats.solver = solver_time;
    stats.solver_stats = session.stats();
    stats.plan_cache_hits = state.plans.hits - hits_base;
    stats.plan_cache_misses = prepared.compiled + (state.plans.misses - miss_base);
    stats.tuples = program
        .idb_predicates()
        .iter()
        .filter_map(|p| state.tables.get(*p))
        .map(Table::len)
        .sum();
    report.wall = total;
    report.stats = stats.clone();
    state.stats = stats.clone();
}

/// The telemetry boundary shared by both apply exits: every finished
/// apply — fresh materialization or incremental delta — publishes its
/// statistics into the process-global registry exactly once.
fn publish_finished_apply(report: &DeltaReport, fresh: bool) {
    super::publish::publish_apply(&report.stats, report, fresh);
}

#[cfg(test)]
mod tests {
    use super::super::{canonicalize, Engine, EvalError};
    use super::*;
    use crate::parser::parse_program;
    use faure_ctable::{Condition, Domain};
    use std::collections::BTreeSet;

    /// Reorients symmetric comparisons (`=`, `≠`) into one canonical
    /// operand order. The storage layer's pooled DNF representation may
    /// flip `x̄ = 1` into `1 = x̄` relative to a raw input condition;
    /// both sides of the differential get the same orientation here.
    fn orient(c: Condition) -> Condition {
        match c {
            Condition::Atom(a)
                if matches!(a.op, faure_ctable::CmpOp::Eq | faure_ctable::CmpOp::Ne)
                    && format!("{:?}", a.lhs) > format!("{:?}", a.rhs) =>
            {
                Condition::Atom(faure_ctable::Atom {
                    lhs: a.rhs,
                    op: a.op,
                    rhs: a.lhs,
                })
            }
            Condition::Not(inner) => Condition::Not(Arc::new(orient((*inner).clone()))),
            Condition::And(cs) => {
                Condition::And(Arc::new(cs.iter().cloned().map(orient).collect()))
            }
            Condition::Or(cs) => Condition::Or(Arc::new(cs.iter().cloned().map(orient).collect())),
            other => other,
        }
    }

    /// Set snapshot of a relation: terms plus canonicalized condition.
    /// Incremental maintenance may store rows in a different order than
    /// a from-scratch run (re-derived rows append at the end), so
    /// comparisons are set-based; canonicalization (plus symmetric-atom
    /// reorientation) washes the tree-shape differences the same
    /// condition can be built with.
    fn snapshot(rel: &Relation) -> BTreeSet<String> {
        rel.iter()
            .map(|t| {
                format!(
                    "{:?} | {:?}",
                    t.terms,
                    canonicalize(orient(canonicalize(t.cond.clone())))
                )
            })
            .collect()
    }

    /// Applies every delta through `apply` on a standing state AND
    /// through the §5 oracle (update + full re-eval), asserting the
    /// maintained tables match the re-evaluation after every step.
    fn check_differential(program_src: &str, db: &Database, deltas: Vec<Delta>, preds: &[&str]) {
        let program = parse_program(program_src).unwrap();
        let prepared = Engine::new().prepare(&program).unwrap();
        let mut state = prepared.materialize(db).unwrap();
        let mut oracle_db = db.clone();
        for (step, delta) in deltas.into_iter().enumerate() {
            let update_by_rel = {
                let mut m: Vec<(String, Update)> = Vec::new();
                for (rel, pat) in &delta.delete {
                    match m.iter_mut().find(|(r, _)| r == rel) {
                        Some((_, u)) => u.deletions.push(pat.clone()),
                        None => m.push((
                            rel.clone(),
                            Update {
                                relation: rel.clone(),
                                insertions: vec![],
                                deletions: vec![pat.clone()],
                            },
                        )),
                    }
                }
                for (rel, tuple) in &delta.insert {
                    let row: Vec<Const> = tuple
                        .terms
                        .iter()
                        .map(|t| t.as_const().unwrap().clone())
                        .collect();
                    match m.iter_mut().find(|(r, _)| r == rel) {
                        Some((_, u)) => u.insertions.push(row),
                        None => m.push((
                            rel.clone(),
                            Update {
                                relation: rel.clone(),
                                insertions: vec![row],
                                deletions: vec![],
                            },
                        )),
                    }
                }
                m
            };
            prepared.apply(&mut state, delta).unwrap();
            for (_, u) in &update_by_rel {
                crate::update::apply_to_database(u, &mut oracle_db).unwrap();
            }
            let full = prepared.run(&oracle_db).unwrap();
            for p in preds {
                let maintained = state
                    .relation(p)
                    .unwrap_or_else(|| panic!("predicate {p} missing from maintained state"));
                let reeval = full.relation(p).unwrap();
                assert_eq!(
                    snapshot(&maintained),
                    snapshot(reeval),
                    "step {step}: maintained `{p}` diverged from full re-eval"
                );
            }
        }
    }

    fn chain_db(n: i64) -> Database {
        let mut db = Database::new();
        db.create_relation(Schema::new("E", &["a", "b"])).unwrap();
        for i in 1..n {
            db.insert("E", CTuple::new([Term::int(i), Term::int(i + 1)]))
                .unwrap();
        }
        db
    }

    const TC: &str = "R(a, b) :- E(a, b).\nR(a, b) :- E(a, c), R(c, b).\n";

    #[test]
    fn materialize_matches_run() {
        let db = chain_db(6);
        let program = parse_program(TC).unwrap();
        let prepared = Engine::new().prepare(&program).unwrap();
        let state = prepared.materialize(&db).unwrap();
        let full = prepared.run(&db).unwrap();
        assert_eq!(
            snapshot(&state.relation("R").unwrap()),
            snapshot(full.relation("R").unwrap())
        );
        assert_eq!(state.relation("R").unwrap().len(), 15);
        assert!(!state.is_fresh());
    }

    #[test]
    fn insert_extends_transitive_closure() {
        let db = chain_db(4); // 1→2→3→4
        let mut d = Delta::new();
        d.push_insert_fact("E", [Const::Int(4), Const::Int(5)]);
        check_differential(TC, &db, vec![d], &["R", "E"]);
    }

    #[test]
    fn insert_report_counts_propagation() {
        let db = chain_db(4);
        let program = parse_program(TC).unwrap();
        let prepared = Engine::new().prepare(&program).unwrap();
        let mut state = prepared.materialize(&db).unwrap();
        let mut d = Delta::new();
        d.push_insert_fact("E", [Const::Int(4), Const::Int(5)]);
        let report = prepared.apply(&mut state, d).unwrap();
        assert_eq!(report.inserted, 1);
        assert_eq!(report.deleted, 0);
        assert_eq!(report.overdeleted, 0);
        // New paths: 4→5, 3→5, 2→5, 1→5.
        assert_eq!(report.rederived, 4);
        assert_eq!(report.strata_touched, 1);
        assert_eq!(state.relation("R").unwrap().len(), 10);
    }

    #[test]
    fn delete_shrinks_transitive_closure() {
        let db = chain_db(6);
        let mut d = Delta::new();
        d.push_delete_exact("E", [Const::Int(3), Const::Int(4)]);
        check_differential(TC, &db, vec![d], &["R", "E"]);
    }

    #[test]
    fn delete_on_cycle_rederives_surviving_paths() {
        let mut db = Database::new();
        db.create_relation(Schema::new("E", &["a", "b"])).unwrap();
        for (a, b) in [(1, 2), (2, 3), (3, 1), (2, 4), (4, 3)] {
            db.insert("E", CTuple::new([Term::int(a), Term::int(b)]))
                .unwrap();
        }
        let mut d = Delta::new();
        d.push_delete_exact("E", [Const::Int(2), Const::Int(3)]);
        // 2→3 survives via 2→4→3; the cycle must be re-derived, not lost.
        check_differential(TC, &db, vec![d], &["R"]);
    }

    #[test]
    fn mixed_stream_of_deltas_stays_synchronized() {
        let db = chain_db(5);
        let mut d1 = Delta::new();
        d1.push_insert_fact("E", [Const::Int(5), Const::Int(1)]); // close the cycle
        let mut d2 = Delta::new();
        d2.push_delete_exact("E", [Const::Int(2), Const::Int(3)]);
        d2.push_insert_fact("E", [Const::Int(2), Const::Int(5)]);
        let mut d3 = Delta::new();
        d3.push_delete_exact("E", [Const::Int(5), Const::Int(1)]);
        check_differential(TC, &db, vec![d1, d2, d3], &["R", "E"]);
    }

    #[test]
    fn conditional_rows_propagate_and_retract() {
        let mut db = Database::new();
        let x = db.fresh_cvar("x", Domain::Bool01);
        db.create_relation(Schema::new("E", &["a", "b"])).unwrap();
        db.insert("E", CTuple::new([Term::int(1), Term::int(2)]))
            .unwrap();
        db.insert(
            "E",
            CTuple::with_cond(
                [Term::int(2), Term::int(3)],
                Condition::eq(Term::Var(x), Term::int(1)),
            ),
        )
        .unwrap();
        let mut d1 = Delta::new();
        d1.push_insert_fact("E", [Const::Int(3), Const::Int(4)]);
        // Pattern deletion hitting the c-variable row: weakens its
        // condition (Levy–Sagiv ψ ∧ ¬μ) instead of dropping it.
        let mut d2 = Delta::new();
        d2.push_delete(
            "E",
            DeletePattern {
                cols: vec![None, Some(Const::Int(3))],
            },
        );
        check_differential(TC, &db, vec![d1, d2], &["R", "E"]);
    }

    #[test]
    fn negation_over_changed_predicate_rederives_head() {
        let mut db = Database::new();
        db.create_relation(Schema::new("N", &["a"])).unwrap();
        db.create_relation(Schema::new("Block", &["a"])).unwrap();
        db.insert("N", CTuple::new([Term::int(1)])).unwrap();
        db.insert("N", CTuple::new([Term::int(2)])).unwrap();
        db.insert("Block", CTuple::new([Term::int(1)])).unwrap();
        let program = "Open(a) :- N(a), !Block(a).\n";
        // Unblocking 1 must *create* Open(1); blocking 2 must kill Open(2).
        let mut d1 = Delta::new();
        d1.push_delete_exact("Block", [Const::Int(1)]);
        let mut d2 = Delta::new();
        d2.push_insert_fact("Block", [Const::Int(2)]);
        check_differential(program, &db, vec![d1, d2], &["Open"]);
    }

    #[test]
    fn multi_stratum_propagation_crosses_negation() {
        let mut db = Database::new();
        db.create_relation(Schema::new("E", &["a", "b"])).unwrap();
        db.create_relation(Schema::new("V", &["a"])).unwrap();
        for (a, b) in [(1, 2), (2, 3)] {
            db.insert("E", CTuple::new([Term::int(a), Term::int(b)]))
                .unwrap();
        }
        for v in 1..=4 {
            db.insert("V", CTuple::new([Term::int(v)])).unwrap();
        }
        let program = "R(a, b) :- E(a, b).\n\
                       R(a, b) :- E(a, c), R(c, b).\n\
                       Reach(b) :- R(1, b).\n\
                       Unreach(a) :- V(a), !Reach(a).\n";
        let mut d1 = Delta::new();
        d1.push_insert_fact("E", [Const::Int(3), Const::Int(4)]);
        let mut d2 = Delta::new();
        d2.push_delete_exact("E", [Const::Int(1), Const::Int(2)]);
        check_differential(program, &db, vec![d1, d2], &["R", "Reach", "Unreach"]);
    }

    #[test]
    fn delta_on_derived_predicate_is_rejected() {
        let db = chain_db(4);
        let program = parse_program(TC).unwrap();
        let prepared = Engine::new().prepare(&program).unwrap();
        let mut state = prepared.materialize(&db).unwrap();
        let mut d = Delta::new();
        d.push_insert_fact("R", [Const::Int(9), Const::Int(9)]);
        assert!(matches!(
            prepared.apply(&mut state, d),
            Err(EvalError::InvalidDelta(_))
        ));
        let mut d = Delta::new();
        d.push_delete_exact("R", [Const::Int(1), Const::Int(2)]);
        assert!(matches!(
            prepared.apply(&mut state, d),
            Err(EvalError::InvalidDelta(_))
        ));
    }

    #[test]
    fn unconstrained_deletion_is_rejected() {
        let db = chain_db(4);
        let program = parse_program(TC).unwrap();
        let prepared = Engine::new().prepare(&program).unwrap();
        let mut state = prepared.materialize(&db).unwrap();
        let mut d = Delta::new();
        d.push_delete(
            "E",
            DeletePattern {
                cols: vec![None, None],
            },
        );
        assert!(matches!(
            prepared.apply(&mut state, d),
            Err(EvalError::InvalidDelta(_))
        ));
    }

    #[test]
    fn delta_on_unknown_relation_is_skipped() {
        let db = chain_db(4);
        let program = parse_program(TC).unwrap();
        let prepared = Engine::new().prepare(&program).unwrap();
        let mut state = prepared.materialize(&db).unwrap();
        let mut d = Delta::new();
        d.push_insert_fact("Nope", [Const::Int(1)]);
        d.push_delete_exact("Nope", [Const::Int(1)]);
        let report = prepared.apply(&mut state, d).unwrap();
        assert_eq!(report.inserted, 0);
        assert_eq!(report.deleted, 0);
    }

    #[test]
    fn noop_delta_touches_nothing() {
        let db = chain_db(6);
        let program = parse_program(TC).unwrap();
        let prepared = Engine::new().prepare(&program).unwrap();
        let mut state = prepared.materialize(&db).unwrap();
        let before = snapshot(&state.relation("R").unwrap());
        // Re-inserting an existing fact changes nothing, so no stratum
        // should be touched at all.
        let mut d = Delta::new();
        d.push_insert_fact("E", [Const::Int(1), Const::Int(2)]);
        let report = prepared.apply(&mut state, d).unwrap();
        assert_eq!(report.inserted, 0);
        assert_eq!(report.strata_touched, 0);
        assert_eq!(report.rederived, 0);
        assert_eq!(before, snapshot(&state.relation("R").unwrap()));
    }

    #[test]
    fn from_update_roundtrips_order() {
        let u = Update {
            relation: "E".into(),
            insertions: vec![vec![Const::Int(7), Const::Int(8)]],
            deletions: vec![DeletePattern::exact([Const::Int(1), Const::Int(2)])],
        };
        let d = Delta::from_update(&u);
        assert_eq!(d.insert.len(), 1);
        assert_eq!(d.delete.len(), 1);
        let db = chain_db(5);
        check_differential(TC, &db, vec![d], &["R", "E"]);
    }

    #[test]
    fn incremental_is_bit_identical_across_thread_counts() {
        let db = chain_db(7);
        let program = parse_program(TC).unwrap();
        let mut snaps = Vec::new();
        for threads in [1usize, 2] {
            let engine = Engine::with_options(EvalOptions {
                threads,
                ..Default::default()
            });
            let prepared = engine.prepare(&program).unwrap();
            let mut state = prepared.materialize(&db).unwrap();
            let mut d = Delta::new();
            d.push_delete_exact("E", [Const::Int(4), Const::Int(5)]);
            d.push_insert_fact("E", [Const::Int(7), Const::Int(1)]);
            prepared.apply(&mut state, d).unwrap();
            snaps.push(snapshot(&state.relation("R").unwrap()));
        }
        assert_eq!(snaps[0], snaps[1]);
    }
}
