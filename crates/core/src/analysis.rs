//! Static analysis of fauré-log programs: safety (range restriction)
//! and stratification.
//!
//! *Safety* ensures evaluation terminates with finite answers: every
//! rule variable in the head, in a negated atom, or in a comparison
//! must be bound by a positive body atom.
//!
//! *Stratification* orders predicates so that a negated atom's relation
//! is fully computed before the negation is evaluated — the usual
//! stratified-datalog semantics the paper adopts for recursion plus
//! "not derivable" negation (§3, §6: "recursive fauré-log is
//! implemented by stratification").

use crate::ast::{Literal, Program, Rule};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Static-analysis errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnalysisError {
    /// A rule variable is not bound by any positive body atom.
    UnsafeVariable {
        /// The offending rule (rendered).
        rule: String,
        /// The unbound variable.
        variable: String,
    },
    /// The program has negation through recursion (no stratification).
    NotStratifiable {
        /// A predicate on the offending negative cycle.
        predicate: String,
    },
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::UnsafeVariable { rule, variable } => {
                write!(f, "unsafe variable `{variable}` in rule `{rule}`")
            }
            AnalysisError::NotStratifiable { predicate } => write!(
                f,
                "program is not stratifiable: predicate `{predicate}` is on a cycle through negation"
            ),
        }
    }
}

impl std::error::Error for AnalysisError {}

/// Checks range restriction for one rule.
pub fn check_rule_safety(rule: &Rule) -> Result<(), AnalysisError> {
    let bound: BTreeSet<&str> = rule
        .body
        .iter()
        .filter(|l| !l.is_negative())
        .flat_map(|l| l.atom().variables())
        .collect();
    let mut need: Vec<&str> = rule.head.variables().collect();
    for lit in rule.body.iter().filter(|l| l.is_negative()) {
        need.extend(lit.atom().variables());
    }
    for cmp in &rule.comparisons {
        need.extend(cmp.variables());
    }
    for v in need {
        if !bound.contains(v) {
            return Err(AnalysisError::UnsafeVariable {
                rule: rule.to_string(),
                variable: v.to_owned(),
            });
        }
    }
    Ok(())
}

/// Checks safety of every rule in the program.
pub fn check_safety(program: &Program) -> Result<(), AnalysisError> {
    for r in &program.rules {
        check_rule_safety(r)?;
    }
    Ok(())
}

/// A stratification: rule indices grouped by stratum, lowest first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stratification {
    /// Stratum number per predicate.
    pub pred_stratum: BTreeMap<String, usize>,
    /// Rule indices per stratum.
    pub strata: Vec<Vec<usize>>,
}

/// Computes a stratification of the program, or reports a negative
/// cycle.
///
/// Uses the textbook iterative algorithm: `stratum(p) ≥ stratum(q)`
/// when `p` depends positively on IDB predicate `q`, and
/// `stratum(p) > stratum(q)` when the dependency is through negation.
/// If a stratum value exceeds the number of IDB predicates the program
/// contains a cycle through negation.
pub fn stratify(program: &Program) -> Result<Stratification, AnalysisError> {
    let idb: BTreeSet<&str> = program.idb_predicates();
    let mut stratum: BTreeMap<&str, usize> = idb.iter().map(|&p| (p, 0)).collect();
    let n = idb.len().max(1);

    let mut changed = true;
    let mut rounds = 0usize;
    while changed {
        changed = false;
        rounds += 1;
        if rounds > n * n + 1 {
            // Should be caught by the bound check below, but guard anyway.
            break;
        }
        for rule in &program.rules {
            let head = rule.head.pred.as_str();
            let mut min_head = stratum[head];
            for lit in &rule.body {
                let p = lit.atom().pred.as_str();
                if !idb.contains(p) {
                    continue; // EDB predicates live in stratum 0
                }
                let required = match lit {
                    Literal::Pos(_) => stratum[p],
                    Literal::Neg(_) => stratum[p] + 1,
                };
                min_head = min_head.max(required);
            }
            if min_head > stratum[head] {
                if min_head > n {
                    return Err(AnalysisError::NotStratifiable {
                        predicate: head.to_owned(),
                    });
                }
                stratum.insert(head, min_head);
                changed = true;
            }
        }
    }

    let max_stratum = stratum.values().copied().max().unwrap_or(0);
    let mut strata: Vec<Vec<usize>> = vec![Vec::new(); max_stratum + 1];
    for (idx, rule) in program.rules.iter().enumerate() {
        strata[stratum[rule.head.pred.as_str()]].push(idx);
    }
    Ok(Stratification {
        pred_stratum: stratum
            .into_iter()
            .map(|(k, v)| (k.to_owned(), v))
            .collect(),
        strata,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_program, parse_rule};

    #[test]
    fn safe_rule_passes() {
        let r = parse_rule("R(f, n1, n2) :- F(f, n1, n3), R(f, n3, n2).").unwrap();
        assert!(check_rule_safety(&r).is_ok());
    }

    #[test]
    fn unbound_head_variable_rejected() {
        let r = parse_rule("R(a, b) :- F(a).").unwrap();
        assert!(matches!(
            check_rule_safety(&r),
            Err(AnalysisError::UnsafeVariable { variable, .. }) if variable == "b"
        ));
    }

    #[test]
    fn negated_only_variable_rejected() {
        let r = parse_rule("R(a) :- F(a), !G(b).").unwrap();
        assert!(check_rule_safety(&r).is_err());
    }

    #[test]
    fn comparison_only_variable_rejected() {
        let r = parse_rule("R(a) :- F(a), b < 3.").unwrap();
        assert!(check_rule_safety(&r).is_err());
    }

    #[test]
    fn cvars_do_not_need_binding() {
        // C-variables are c-domain symbols, not rule variables; they
        // may appear anywhere (e.g. Listing 3's variable-free rules).
        let r = parse_rule("Vt($x, CS, $p) :- R($x, CS, $p), $x != Mkt.").unwrap();
        assert!(check_rule_safety(&r).is_ok());
    }

    #[test]
    fn facts_are_safe() {
        let r = parse_rule("Lb(Mkt, CS).").unwrap();
        assert!(check_rule_safety(&r).is_ok());
    }

    #[test]
    fn stratifies_negation_free_program_into_one_stratum() {
        let p = parse_program(
            "R(a, b) :- F(a, b).\n\
             R(a, b) :- F(a, c), R(c, b).\n",
        )
        .unwrap();
        let s = stratify(&p).unwrap();
        assert_eq!(s.strata.len(), 1);
        assert_eq!(s.strata[0], vec![0, 1]);
    }

    #[test]
    fn negation_creates_second_stratum() {
        let p = parse_program(
            "R(a, b) :- F(a, b).\n\
             Bad(a) :- N(a), !R(a, a).\n",
        )
        .unwrap();
        let s = stratify(&p).unwrap();
        assert_eq!(s.pred_stratum["R"], 0);
        assert_eq!(s.pred_stratum["Bad"], 1);
        assert_eq!(s.strata.len(), 2);
    }

    #[test]
    fn negative_cycle_rejected() {
        let p = parse_program(
            "P(a) :- N(a), !Q(a).\n\
             Q(a) :- N(a), !P(a).\n",
        )
        .unwrap();
        assert!(matches!(
            stratify(&p),
            Err(AnalysisError::NotStratifiable { .. })
        ));
    }

    #[test]
    fn positive_cycle_fine() {
        let p = parse_program(
            "P(a) :- Q(a).\n\
             Q(a) :- P(a).\n\
             Q(a) :- N(a).\n",
        )
        .unwrap();
        let s = stratify(&p).unwrap();
        assert_eq!(s.strata.len(), 1);
    }

    #[test]
    fn multi_level_strata() {
        let p = parse_program(
            "A(x) :- E(x).\n\
             B(x) :- E(x), !A(x).\n\
             C(x) :- E(x), !B(x).\n",
        )
        .unwrap();
        let s = stratify(&p).unwrap();
        assert_eq!(s.pred_stratum["A"], 0);
        assert_eq!(s.pred_stratum["B"], 1);
        assert_eq!(s.pred_stratum["C"], 2);
    }
}
