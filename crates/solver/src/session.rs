//! Stats-collecting solver session.
//!
//! The Table 4 reproduction reports the time spent in the solver phase
//! separately from the relational ("SQL") phase, mirroring the paper's
//! `sql` / `Z3` columns. [`Session`] wraps the solver entry points and
//! accumulates call counts and wall-clock time.
//!
//! The session also memoises solver results keyed by the (canonical)
//! condition. Fixpoint evaluation re-derives the same tuples — and
//! therefore the same conditions — across iterations; phase-3 pruning
//! would otherwise re-solve each of them from scratch every round. The
//! memo is sound because c-variable registries are append-only within a
//! session: a condition only mentions variables that existed when it
//! was built, so growing the registry never changes its status. A
//! session must not be reused across *distinct* registries (the
//! pipeline creates one session per evaluation run).

use crate::error::SolverError;
use crate::search;
use crate::simplify;
use faure_ctable::{Assignment, CVarRegistry, Condition};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Upper bound on memo entries (per kind). Past this the session keeps
/// answering queries but stops caching new conditions, bounding memory
/// on adversarial workloads.
const MEMO_CAP: usize = 1 << 16;

/// Accumulated solver statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Number of satisfiability queries issued.
    pub sat_calls: u64,
    /// How many of them came back satisfiable.
    pub sat_true: u64,
    /// Number of `simplify_pruned` invocations.
    pub simplify_calls: u64,
    /// Queries answered from the session memo (no solver work).
    pub memo_hits: u64,
    /// Queries that missed the memo and ran the solver.
    pub memo_misses: u64,
    /// Total wall-clock time inside the solver.
    pub time: Duration,
}

impl SolverStats {
    /// Fraction of memoisable queries answered from the memo, in
    /// `[0, 1]`; `0.0` when no queries were issued.
    pub fn memo_hit_rate(&self) -> f64 {
        let total = self.memo_hits + self.memo_misses;
        if total == 0 {
            0.0
        } else {
            self.memo_hits as f64 / total as f64
        }
    }
}

/// A solver session: entry points plus accumulated statistics and a
/// condition-keyed memo (see module docs for the soundness argument).
///
/// Sessions are cheap; the evaluation pipeline creates one per query
/// run and folds its stats into the run report.
#[derive(Debug, Default)]
pub struct Session {
    stats: SolverStats,
    sat_memo: HashMap<Condition, bool>,
    simplify_memo: HashMap<Condition, Condition>,
}

impl Session {
    /// A fresh session with zeroed stats and an empty memo.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current statistics snapshot.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Resets statistics to zero and clears the memo (required before
    /// reusing a session with a different registry).
    pub fn reset(&mut self) {
        self.stats = SolverStats::default();
        self.sat_memo.clear();
        self.simplify_memo.clear();
    }

    /// Satisfiability with stats accounting and memoisation.
    pub fn satisfiable(
        &mut self,
        reg: &CVarRegistry,
        cond: &Condition,
    ) -> Result<bool, SolverError> {
        self.stats.sat_calls += 1;
        if let Some(&hit) = self.sat_memo.get(cond) {
            self.stats.memo_hits += 1;
            if hit {
                self.stats.sat_true += 1;
            }
            return Ok(hit);
        }
        self.stats.memo_misses += 1;
        let start = Instant::now();
        let out = search::satisfiable(reg, cond);
        self.stats.time += start.elapsed();
        if let Ok(sat) = out {
            if sat {
                self.stats.sat_true += 1;
            }
            if self.sat_memo.len() < MEMO_CAP {
                self.sat_memo.insert(cond.clone(), sat);
            }
        }
        out
    }

    /// Model search with stats accounting (not memoised: models are
    /// only requested for explanation paths, not hot loops).
    pub fn find_model(
        &mut self,
        reg: &CVarRegistry,
        cond: &Condition,
    ) -> Result<Option<Assignment>, SolverError> {
        let start = Instant::now();
        let out = search::find_model(reg, cond);
        self.stats.time += start.elapsed();
        self.stats.sat_calls += 1;
        if let Ok(Some(_)) = out {
            self.stats.sat_true += 1;
        }
        out
    }

    /// Solver-backed simplification with stats accounting and
    /// memoisation.
    pub fn simplify_pruned(
        &mut self,
        reg: &CVarRegistry,
        cond: &Condition,
    ) -> Result<Condition, SolverError> {
        self.stats.simplify_calls += 1;
        if let Some(hit) = self.simplify_memo.get(cond) {
            self.stats.memo_hits += 1;
            return Ok(hit.clone());
        }
        self.stats.memo_misses += 1;
        let start = Instant::now();
        let out = simplify::simplify_pruned(reg, cond);
        self.stats.time += start.elapsed();
        if let Ok(simplified) = &out {
            if self.simplify_memo.len() < MEMO_CAP {
                self.simplify_memo.insert(cond.clone(), simplified.clone());
            }
        }
        out
    }

    /// Merges another session's stats into this one (memo entries are
    /// not transferred — they may come from a different registry).
    pub fn absorb(&mut self, other: &Session) {
        self.stats.sat_calls += other.stats.sat_calls;
        self.stats.sat_true += other.stats.sat_true;
        self.stats.simplify_calls += other.stats.simplify_calls;
        self.stats.memo_hits += other.stats.memo_hits;
        self.stats.memo_misses += other.stats.memo_misses;
        self.stats.time += other.stats.time;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faure_ctable::{Domain, Term};

    #[test]
    fn stats_accumulate() {
        let mut reg = CVarRegistry::new();
        let x = reg.fresh("x", Domain::Bool01);
        let mut s = Session::new();
        let sat = Condition::eq(Term::Var(x), Term::int(1));
        let unsat = sat.clone().and(Condition::eq(Term::Var(x), Term::int(0)));
        assert!(s.satisfiable(&reg, &sat).unwrap());
        assert!(!s.satisfiable(&reg, &unsat).unwrap());
        let st = s.stats();
        assert_eq!(st.sat_calls, 2);
        assert_eq!(st.sat_true, 1);
        s.reset();
        assert_eq!(s.stats(), SolverStats::default());
    }

    #[test]
    fn absorb_merges() {
        let mut reg = CVarRegistry::new();
        let x = reg.fresh("x", Domain::Bool01);
        let mut a = Session::new();
        let mut b = Session::new();
        let c = Condition::eq(Term::Var(x), Term::int(1));
        a.satisfiable(&reg, &c).unwrap();
        b.satisfiable(&reg, &c).unwrap();
        a.absorb(&b);
        assert_eq!(a.stats().sat_calls, 2);
    }

    #[test]
    fn memo_hits_repeat_queries() {
        let mut reg = CVarRegistry::new();
        let x = reg.fresh("x", Domain::Bool01);
        let mut s = Session::new();
        let c = Condition::eq(Term::Var(x), Term::int(1));
        assert!(s.satisfiable(&reg, &c).unwrap());
        assert!(s.satisfiable(&reg, &c).unwrap());
        assert!(s.satisfiable(&reg, &c).unwrap());
        let st = s.stats();
        assert_eq!(st.sat_calls, 3);
        assert_eq!(st.sat_true, 3);
        assert_eq!(st.memo_misses, 1);
        assert_eq!(st.memo_hits, 2);
        assert!(st.memo_hit_rate() > 0.6);
    }

    #[test]
    fn memo_hits_repeat_simplify() {
        let mut reg = CVarRegistry::new();
        let x = reg.fresh("x", Domain::Bool01);
        let mut s = Session::new();
        let c = Condition::eq(Term::Var(x), Term::int(0))
            .and(Condition::eq(Term::Var(x), Term::int(1)));
        let first = s.simplify_pruned(&reg, &c).unwrap();
        let second = s.simplify_pruned(&reg, &c).unwrap();
        assert_eq!(first, Condition::False);
        assert_eq!(first, second);
        let st = s.stats();
        assert_eq!(st.simplify_calls, 2);
        assert!(st.memo_hits >= 1);
    }

    #[test]
    fn reset_clears_memo() {
        let mut reg = CVarRegistry::new();
        let x = reg.fresh("x", Domain::Bool01);
        let mut s = Session::new();
        let c = Condition::eq(Term::Var(x), Term::int(1));
        s.satisfiable(&reg, &c).unwrap();
        s.reset();
        s.satisfiable(&reg, &c).unwrap();
        assert_eq!(s.stats().memo_hits, 0);
        assert_eq!(s.stats().memo_misses, 1);
    }
}
