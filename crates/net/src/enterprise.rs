//! The §5 enterprise model: a network managed by multiple teams.
//!
//! Two frontend subnets (market management `Mkt`, research `R&D`), two
//! backend servers (critical `CS`, general `GS`). A security team owns
//! the firewalls (`Fw`), a traffic-engineering team owns the load
//! balancers (`Lb`), and reachability on specific ports lives in
//! `R(subnet, server, port)`. All three are c-tables over the c-domain
//! `{Mkt, R&D, x̄} × {CS, GS, ȳ} × {80, 344, 7000, p̄}`.
//!
//! Constraints (as 0-ary `panic` programs, Listing 3):
//!
//! * `T1` — Mkt traffic to CS must pass a firewall (q9);
//! * `T2` — R&D traffic to any server on port 7000 must pass a load
//!   balancer (q10);
//! * `C_lb` — the TE team's own policy (q11–q15): only frontend
//!   subnets reach CS, on port 7000, through a load balancer;
//! * `C_s` — the security team's policy (q16–q18): all server traffic
//!   uses one of the three ports and passes a firewall.
//!
//! The Listing 4 update: remove load balancing between Mkt and CS, add
//! it for R&D and GS.

use faure_core::{parse_program, DeletePattern, Program, Update};
use faure_ctable::{
    CTuple, CVarId, CVarRegistry, Condition, Const, Database, Domain, Schema, Term,
};

/// Handles to the enterprise model's c-variables.
#[derive(Clone, Copy, Debug)]
pub struct EnterpriseVars {
    /// Unknown subnet `x̄ ∈ {Mkt, R&D}`.
    pub x: CVarId,
    /// Unknown server `ȳ ∈ {CS, GS}`.
    pub y: CVarId,
    /// Unknown port `p̄ ∈ {80, 344, 7000}`.
    pub p: CVarId,
}

/// Creates the `Net = {R, Lb, Fw}` schema with the §5 c-variable
/// domains, and no tuples yet.
pub fn empty_net() -> (Database, EnterpriseVars) {
    let mut db = Database::new();
    let x = db.fresh_cvar(
        "x",
        Domain::Consts(vec![Const::sym("Mkt"), Const::sym("R&D")]),
    );
    let y = db.fresh_cvar(
        "y",
        Domain::Consts(vec![Const::sym("CS"), Const::sym("GS")]),
    );
    let p = db.fresh_cvar("p", Domain::Ints(vec![80, 344, 7000]));
    db.create_relation(Schema::new("R", &["subnet", "server", "port"]))
        .expect("fresh database");
    db.create_relation(Schema::new("Lb", &["subnet", "server"]))
        .expect("fresh database");
    db.create_relation(Schema::new("Fw", &["subnet", "server"]))
        .expect("fresh database");
    (db, EnterpriseVars { x, y, p })
}

/// A compliant network state:
///
/// * Mkt → CS on an unknown port `p̄`, firewalled and load-balanced;
/// * R&D → GS on port 7000, load-balanced (and firewalled);
/// * both teams' policies (`C_lb`, `C_s`) and both targets (`T1`,
///   `T2`) hold.
pub fn compliant_net() -> (Database, EnterpriseVars) {
    let (mut db, vars) = empty_net();
    db.insert(
        "R",
        CTuple::new([Term::sym("Mkt"), Term::sym("CS"), Term::Var(vars.p)]),
    )
    .expect("arity 3");
    db.insert(
        "R",
        CTuple::new([Term::sym("R&D"), Term::sym("GS"), Term::int(7000)]),
    )
    .expect("arity 3");
    for (a, b) in [("Mkt", "CS"), ("R&D", "GS"), ("R&D", "CS"), ("Mkt", "GS")] {
        db.insert("Fw", CTuple::new([Term::sym(a), Term::sym(b)]))
            .expect("arity 2");
    }
    for (a, b) in [("Mkt", "CS"), ("R&D", "GS"), ("R&D", "CS")] {
        db.insert("Lb", CTuple::new([Term::sym(a), Term::sym(b)]))
            .expect("arity 2");
    }
    // C_lb also demands CS traffic use port 7000: constrain p̄ via the
    // R row's condition.
    let r = db.relation_mut("R").expect("created above");
    r.tuples[0].cond = Condition::eq(Term::Var(vars.p), Term::int(7000));
    (db, vars)
}

/// A state violating `T2`: R&D sends port-7000 traffic to GS with no
/// load balancer deployed for that pair.
pub fn t2_violating_net() -> (Database, EnterpriseVars) {
    let (mut db, vars) = empty_net();
    db.insert(
        "R",
        CTuple::new([Term::sym("R&D"), Term::sym("GS"), Term::int(7000)]),
    )
    .expect("arity 3");
    db.insert("Fw", CTuple::new([Term::sym("R&D"), Term::sym("GS")]))
        .expect("arity 2");
    db.insert("Lb", CTuple::new([Term::sym("Mkt"), Term::sym("CS")]))
        .expect("arity 2");
    (db, vars)
}

/// `T1` (q9): Mkt→CS traffic must pass a firewall.
pub fn t1() -> Program {
    parse_program("panic :- R(Mkt, CS, p), !Fw(Mkt, CS).\n").expect("static text")
}

/// `T2` (q10): R&D port-7000 traffic must pass a load balancer.
pub fn t2() -> Program {
    parse_program("panic :- R(\"R&D\", y, 7000), !Lb(\"R&D\", y).\n").expect("static text")
}

/// `C_lb` (q11, q13–q15): the TE team's policy on critical-server
/// traffic.
pub fn c_lb() -> Program {
    parse_program(
        "panic :- Vt(x, y, p).\n\
         Vt(x, CS, p) :- R(x, CS, p), x != Mkt, x != \"R&D\".\n\
         Vt(x, CS, p) :- R(x, CS, p), !Lb(x, CS).\n\
         Vt(x, CS, p) :- R(x, CS, p), p != 7000.\n",
    )
    .expect("static text")
}

/// `C_s` (q16–q18): the security team's policy on all server traffic.
pub fn c_s() -> Program {
    parse_program(
        "panic :- Vs(x, y, p).\n\
         Vs(x, y, p) :- R(x, y, p), !Fw(x, y).\n\
         Vs(x, y, p) :- R(x, y, p), p != 80, p != 344, p != 7000.\n",
    )
    .expect("static text")
}

/// Both team policies combined (the candidate set of §5).
pub fn team_policies() -> Program {
    let mut p = c_lb();
    p.extend(c_s());
    p
}

/// The Listing 4 update: add load balancing for (R&D, GS), remove it
/// for (Mkt, CS).
pub fn listing4_update() -> Update {
    Update::new("Lb")
        .insert([Const::sym("R&D"), Const::sym("GS")])
        .delete(DeletePattern::exact([Const::sym("Mkt"), Const::sym("CS")]))
}

/// A registry carrying the §5 attribute domains under the names the
/// constraint programs use — handed to the subsumption checker.
pub fn constraint_registry() -> CVarRegistry {
    let (db, _) = empty_net();
    db.cvars
}

#[cfg(test)]
mod tests {
    use super::*;
    use faure_core::{evaluate, subsumes, Subsumption};

    #[test]
    fn compliant_net_satisfies_everything() {
        let (db, _) = compliant_net();
        for program in [t1(), t2(), c_lb(), c_s()] {
            let out = evaluate(&program, &db).unwrap();
            assert!(!out.derived("panic"), "expected no panic:\n{program}");
        }
    }

    #[test]
    fn violating_net_trips_t2_only() {
        let (db, _) = t2_violating_net();
        assert!(evaluate(&t2(), &db).unwrap().derived("panic"));
        assert!(!evaluate(&t1(), &db).unwrap().derived("panic"));
    }

    /// The §5 headline: {C_lb, C_s} subsume T1 but not T2.
    #[test]
    fn category_i_results_match_paper() {
        let reg = constraint_registry();
        assert_eq!(
            subsumes(&team_policies(), &t1(), &reg).unwrap(),
            Subsumption::Subsumed
        );
        assert!(matches!(
            subsumes(&team_policies(), &t2(), &reg).unwrap(),
            Subsumption::NotShown { .. }
        ));
    }

    #[test]
    fn firewall_missing_breaks_cs() {
        let (mut db, _) = compliant_net();
        // Drop all firewalls: C_s and T1 both violated.
        db.relation_mut("Fw").unwrap().tuples.clear();
        assert!(evaluate(&c_s(), &db).unwrap().derived("panic"));
        assert!(evaluate(&t1(), &db).unwrap().derived("panic"));
    }

    #[test]
    fn unknown_port_violation_is_conditional() {
        // Mkt→CS on unknown port p̄ with no port restriction: C_lb's
        // q15 (p != 7000) panics conditionally on p̄.
        let (mut db, vars) = empty_net();
        db.insert(
            "R",
            CTuple::new([Term::sym("Mkt"), Term::sym("CS"), Term::Var(vars.p)]),
        )
        .unwrap();
        db.insert("Lb", CTuple::new([Term::sym("Mkt"), Term::sym("CS")]))
            .unwrap();
        let out = evaluate(&c_lb(), &db).unwrap();
        let panic_rel = out.relation("panic").unwrap();
        assert_eq!(panic_rel.len(), 1);
        // Not unconditional: only when p̄ ≠ 7000.
        assert_ne!(panic_rel.tuples[0].cond, Condition::True);
        assert!(faure_solver::equivalent(
            &out.database.cvars,
            &panic_rel.tuples[0].cond,
            &Condition::ne(Term::Var(vars.p), Term::int(7000)),
        )
        .unwrap());
    }
}
