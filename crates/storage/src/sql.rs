//! A small SQL dialect over c-tables.
//!
//! §3 of the paper recalls that "the c-tables can be queried by a
//! straightforward extension of SQL": the join of two c-tables
//! concatenates tuples and conjoins their conditions with the equality
//! of the join attributes; selections against c-variable cells attach
//! conditions instead of filtering. The paper's implementation (§6)
//! runs fauré-log by *rewriting* onto SQL; this module provides the
//! reverse convenience — an ad-hoc SQL query surface over the same
//! storage engine, mirroring what a PostgreSQL user of fauré would
//! type:
//!
//! ```text
//! SELECT dest, path FROM P WHERE dest = '1.2.3.4'
//! SELECT P.dest, C.cost FROM P, C WHERE P.path = C.path
//! SELECT * FROM R WHERE port != 80 AND server = 'CS'
//! ```
//!
//! Supported: `SELECT` column lists (qualified or bare) or `*`;
//! comma-joins with equality predicates; `WHERE` as an `AND`-chain of
//! comparisons (`=`, `!=`, `<`, `<=`, `>`, `>=`) between columns,
//! integers, and `'quoted'` strings. Deliberately *not* supported
//! (this is an illustration of the c-table algebra, not a database):
//! `OR`, grouping, aggregation, subqueries — use fauré-log for
//! anything deductive.

use crate::ops;
use crate::table::{Pattern, Table};
use faure_ctable::{Atom, CTuple, CVarRegistry, CmpOp, Condition, Const, Database, Schema, Term};
use std::fmt;

/// SQL layer errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SqlError {
    /// Lex/parse problem with position.
    Parse {
        /// Byte offset.
        pos: usize,
        /// Message.
        msg: String,
    },
    /// Unknown table in FROM.
    UnknownTable(String),
    /// Unknown or ambiguous column reference.
    UnknownColumn(String),
    /// A column reference is ambiguous across FROM tables.
    AmbiguousColumn(String),
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Parse { pos, msg } => write!(f, "SQL parse error at byte {pos}: {msg}"),
            SqlError::UnknownTable(t) => write!(f, "unknown table {t}"),
            SqlError::UnknownColumn(c) => write!(f, "unknown column {c}"),
            SqlError::AmbiguousColumn(c) => {
                write!(f, "ambiguous column {c}: qualify it as table.column")
            }
        }
    }
}

impl std::error::Error for SqlError {}

/// A parsed column reference (`table.column` or bare `column`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColRef {
    /// Optional table qualifier.
    pub table: Option<String>,
    /// Column name.
    pub column: String,
}

/// One side of a WHERE comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SqlValue {
    /// Column reference.
    Col(ColRef),
    /// Constant (integer or quoted string).
    Lit(Const),
}

/// One WHERE predicate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SqlPred {
    /// Left side.
    pub lhs: SqlValue,
    /// Operator.
    pub op: CmpOp,
    /// Right side.
    pub rhs: SqlValue,
}

/// A parsed SELECT statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Select {
    /// Projected columns; empty means `*`.
    pub columns: Vec<ColRef>,
    /// FROM tables, in order.
    pub tables: Vec<String>,
    /// AND-chain of predicates.
    pub predicates: Vec<SqlPred>,
}

// ---------------------------------------------------------------------------
// parser
// ---------------------------------------------------------------------------

struct Lexer<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn err(&self, msg: impl Into<String>) -> SqlError {
        SqlError::Parse {
            pos: self.pos,
            msg: msg.into(),
        }
    }

    fn skip_ws(&mut self) {
        while self.src[self.pos..]
            .chars()
            .next()
            .is_some_and(char::is_whitespace)
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.skip_ws();
        self.src[self.pos..].chars().next()
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        self.skip_ws();
        let rest = &self.src[self.pos..];
        if rest.len() >= kw.len() && rest[..kw.len()].eq_ignore_ascii_case(kw) {
            // Keyword boundary: next char must not be identifier-ish.
            let after = rest[kw.len()..].chars().next();
            if after.is_none_or(|c| !c.is_alphanumeric() && c != '_') {
                self.pos += kw.len();
                return true;
            }
        }
        false
    }

    fn eat_sym(&mut self, sym: &str) -> bool {
        self.skip_ws();
        if self.src[self.pos..].starts_with(sym) {
            self.pos += sym.len();
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String, SqlError> {
        self.skip_ws();
        let start = self.pos;
        for c in self.src[self.pos..].chars() {
            if c.is_alphanumeric() || c == '_' || c == '&' {
                self.pos += c.len_utf8();
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("expected identifier"));
        }
        Ok(self.src[start..self.pos].to_owned())
    }

    fn value(&mut self) -> Result<SqlValue, SqlError> {
        self.skip_ws();
        match self.peek() {
            Some('\'') => {
                self.pos += 1;
                let start = self.pos;
                while let Some(c) = self.src[self.pos..].chars().next() {
                    if c == '\'' {
                        let text = &self.src[start..self.pos];
                        self.pos += 1;
                        return Ok(SqlValue::Lit(Const::sym(text)));
                    }
                    self.pos += c.len_utf8();
                }
                Err(self.err("unterminated string literal"))
            }
            Some(c) if c.is_ascii_digit() || c == '-' => {
                let start = self.pos;
                if c == '-' {
                    self.pos += 1;
                }
                while self.src[self.pos..]
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_ascii_digit())
                {
                    self.pos += 1;
                }
                let n: i64 = self.src[start..self.pos]
                    .parse()
                    .map_err(|e| self.err(format!("bad integer: {e}")))?;
                Ok(SqlValue::Lit(Const::Int(n)))
            }
            _ => {
                let first = self.ident()?;
                if self.eat_sym(".") {
                    let col = self.ident()?;
                    Ok(SqlValue::Col(ColRef {
                        table: Some(first),
                        column: col,
                    }))
                } else {
                    Ok(SqlValue::Col(ColRef {
                        table: None,
                        column: first,
                    }))
                }
            }
        }
    }

    fn cmp_op(&mut self) -> Result<CmpOp, SqlError> {
        for (sym, op) in [
            ("!=", CmpOp::Ne),
            ("<>", CmpOp::Ne),
            ("<=", CmpOp::Le),
            (">=", CmpOp::Ge),
            ("=", CmpOp::Eq),
            ("<", CmpOp::Lt),
            (">", CmpOp::Gt),
        ] {
            if self.eat_sym(sym) {
                return Ok(op);
            }
        }
        Err(self.err("expected comparison operator"))
    }
}

/// Parses a single SELECT statement.
pub fn parse_select(src: &str) -> Result<Select, SqlError> {
    let mut lx = Lexer { src, pos: 0 };
    if !lx.eat_kw("SELECT") {
        return Err(lx.err("expected SELECT"));
    }
    let mut columns = Vec::new();
    if !lx.eat_sym("*") {
        loop {
            match lx.value()? {
                SqlValue::Col(c) => columns.push(c),
                SqlValue::Lit(_) => return Err(lx.err("literals cannot be projected")),
            }
            if !lx.eat_sym(",") {
                break;
            }
        }
    }
    if !lx.eat_kw("FROM") {
        return Err(lx.err("expected FROM"));
    }
    let mut tables = Vec::new();
    loop {
        tables.push(lx.ident()?);
        if !lx.eat_sym(",") {
            break;
        }
    }
    let mut predicates = Vec::new();
    if lx.eat_kw("WHERE") {
        loop {
            let lhs = lx.value()?;
            let op = lx.cmp_op()?;
            let rhs = lx.value()?;
            predicates.push(SqlPred { lhs, op, rhs });
            if !lx.eat_kw("AND") {
                break;
            }
        }
    }
    lx.skip_ws();
    let _ = lx.eat_sym(";");
    lx.skip_ws();
    if lx.pos != src.len() {
        return Err(lx.err("trailing input"));
    }
    Ok(Select {
        columns,
        tables,
        predicates,
    })
}

// ---------------------------------------------------------------------------
// executor
// ---------------------------------------------------------------------------

/// Column catalogue of the intermediate (joined) table.
struct Catalogue {
    /// (table name, column name) per position.
    cols: Vec<(String, String)>,
}

impl Catalogue {
    fn resolve(&self, r: &ColRef) -> Result<usize, SqlError> {
        let matches: Vec<usize> = self
            .cols
            .iter()
            .enumerate()
            .filter(|(_, (t, c))| c == &r.column && r.table.as_ref().is_none_or(|q| q == t))
            .map(|(i, _)| i)
            .collect();
        match matches.len() {
            0 => Err(SqlError::UnknownColumn(format!(
                "{}{}",
                r.table
                    .as_deref()
                    .map(|t| format!("{t}."))
                    .unwrap_or_default(),
                r.column
            ))),
            1 => Ok(matches[0]),
            _ => Err(SqlError::AmbiguousColumn(r.column.clone())),
        }
    }
}

/// Executes a SELECT against a database of c-tables, returning a
/// result c-table (name `result`). Conditions follow the c-table
/// semantics: comparisons against c-variable cells annotate rows
/// instead of dropping them.
pub fn execute(db: &Database, stmt: &Select) -> Result<Table, SqlError> {
    let reg = &db.cvars;

    // FROM: fold tables left to right, joining on applicable equality
    // predicates (index-assisted), cartesian otherwise.
    let mut acc: Option<(Table, Catalogue)> = None;
    for tname in &stmt.tables {
        let rel = db
            .relation(tname)
            .ok_or_else(|| SqlError::UnknownTable(tname.clone()))?;
        let t = Table::from_relation(rel);
        let cat_new: Vec<(String, String)> = rel
            .schema
            .attrs
            .iter()
            .map(|a| (tname.clone(), a.clone()))
            .collect();
        acc = Some(match acc {
            None => (t, Catalogue { cols: cat_new }),
            Some((left, mut cat)) => {
                // Equality predicates between an existing column and a
                // column of the incoming table drive the join.
                let incoming = Catalogue { cols: cat_new };
                let mut on = Vec::new();
                for p in &stmt.predicates {
                    if p.op != CmpOp::Eq {
                        continue;
                    }
                    if let (SqlValue::Col(a), SqlValue::Col(b)) = (&p.lhs, &p.rhs) {
                        let pairs = [(a, b), (b, a)];
                        for (l, r) in pairs {
                            if let (Ok(li), Ok(ri)) = (cat.resolve(l), incoming.resolve(r)) {
                                on.push((li, ri));
                                break;
                            }
                        }
                    }
                }
                let joined = ops::join(reg, &left, &t, &on, "join");
                cat.cols.extend(incoming.cols);
                (joined, cat)
            }
        });
    }
    let (mut table, cat) = acc.ok_or_else(|| SqlError::Parse {
        pos: 0,
        msg: "FROM clause is empty".into(),
    })?;

    // WHERE: apply remaining predicates (the equality ones already used
    // for joining are harmless to re-apply; they evaluate to ground
    // truths or duplicate conditions that simplification removes).
    for p in &stmt.predicates {
        table = apply_predicate(reg, &table, &cat, p)?;
    }

    // SELECT list.
    let out = if stmt.columns.is_empty() {
        let mut renamed = table;
        renamed.schema = Schema {
            name: "result".into(),
            attrs: cat.cols.iter().map(|(t, c)| format!("{t}.{c}")).collect(),
        };
        renamed
    } else {
        let idx: Vec<usize> = stmt
            .columns
            .iter()
            .map(|c| cat.resolve(c))
            .collect::<Result<_, _>>()?;
        let mut projected = ops::project(&table, &idx, "result");
        projected.schema.attrs = stmt.columns.iter().map(|c| c.column.clone()).collect();
        projected
    };
    Ok(out)
}

fn apply_predicate(
    reg: &CVarRegistry,
    table: &Table,
    cat: &Catalogue,
    pred: &SqlPred,
) -> Result<Table, SqlError> {
    // Fast path: `col = literal` exploits the index.
    if pred.op == CmpOp::Eq {
        if let Some((col, lit)) = eq_col_lit(cat, pred)? {
            let mut pats = vec![Pattern::Any; table.schema.arity()];
            pats[col] = Pattern::Exact(Term::Const(lit));
            return Ok(ops::select(reg, table, &pats));
        }
    }
    // General path: per-row condition atom between the resolved cells.
    let side = |v: &SqlValue, row: &CTuple| -> Result<Term, SqlError> {
        match v {
            SqlValue::Lit(c) => Ok(Term::Const(c.clone())),
            SqlValue::Col(r) => {
                let i = cat.resolve(r)?;
                Ok(row.terms[i].clone())
            }
        }
    };
    let mut out = Table::new(table.schema.clone());
    for row in table.iter() {
        let l = side(&pred.lhs, &row)?;
        let r = side(&pred.rhs, &row)?;
        let cond = Condition::Atom(Atom::new(l, pred.op, r));
        let combined = row.cond.clone().and(cond);
        out.insert(CTuple {
            terms: row.terms.clone(),
            cond: combined,
        })
        .expect("filter preserves the input schema");
    }
    Ok(out)
}

fn eq_col_lit(cat: &Catalogue, pred: &SqlPred) -> Result<Option<(usize, Const)>, SqlError> {
    match (&pred.lhs, &pred.rhs) {
        (SqlValue::Col(c), SqlValue::Lit(l)) | (SqlValue::Lit(l), SqlValue::Col(c)) => {
            Ok(Some((cat.resolve(c)?, l.clone())))
        }
        _ => Ok(None),
    }
}

/// Parses and executes in one call.
pub fn query(db: &Database, sql: &str) -> Result<Table, SqlError> {
    execute(db, &parse_select(sql)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use faure_ctable::examples::table2_path_db;

    #[test]
    fn parse_shapes() {
        let s = parse_select("SELECT dest, path FROM P WHERE dest = '1.2.3.4'").unwrap();
        assert_eq!(s.columns.len(), 2);
        assert_eq!(s.tables, vec!["P"]);
        assert_eq!(s.predicates.len(), 1);

        let s2 =
            parse_select("SELECT P.dest, C.cost FROM P, C WHERE P.path = C.path AND C.cost < 4;")
                .unwrap();
        assert_eq!(s2.tables, vec!["P", "C"]);
        assert_eq!(s2.predicates.len(), 2);

        let star = parse_select("SELECT * FROM R").unwrap();
        assert!(star.columns.is_empty());
    }

    #[test]
    fn parse_errors() {
        assert!(parse_select("SELEC a FROM t").is_err());
        assert!(parse_select("SELECT a FROM").is_err());
        assert!(parse_select("SELECT a FROM t WHERE a =").is_err());
        assert!(parse_select("SELECT 'lit' FROM t").is_err());
        assert!(parse_select("SELECT a FROM t extra").is_err());
    }

    #[test]
    fn select_constant_against_cvar_annotates() {
        let (db, vars) = table2_path_db();
        // dest = '1.2.3.5' matches row (ȳ, [ABE]) conditionally.
        let t = query(&db, "SELECT dest, path FROM P WHERE dest = '1.2.3.5'").unwrap();
        assert_eq!(t.len(), 1);
        let cond = &t.row(0).cond;
        assert!(faure_solver::satisfiable(&db.cvars, cond).unwrap());
        assert!(cond.cvars().contains(&vars.y));
    }

    #[test]
    fn join_on_ctable_matches_paper_semantics() {
        let (db, _) = table2_path_db();
        // The q2 query, in SQL.
        let t = query(
            &db,
            "SELECT C.cost FROM P, C WHERE P.path = C.path AND P.dest = '1.2.3.4'",
        )
        .unwrap();
        // 3 [x̄=[ABC]] and 4 [x̄=[ADEC]]: two conditional answers.
        assert_eq!(t.len(), 2);
        let mut costs: Vec<i64> = t
            .iter()
            .map(|r| r.terms[0].as_const().unwrap().as_int().unwrap())
            .collect();
        costs.sort_unstable();
        assert_eq!(costs, vec![3, 4]);
        for row in t.iter() {
            assert_ne!(row.cond, Condition::True);
        }
    }

    #[test]
    fn star_qualifies_columns() {
        let (db, _) = table2_path_db();
        let t = query(&db, "SELECT * FROM C WHERE cost >= 4").unwrap();
        assert_eq!(t.schema.attrs, vec!["C.path", "C.cost"]);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn order_comparisons_on_ints() {
        let (db, _) = table2_path_db();
        let t = query(&db, "SELECT cost FROM C WHERE cost < 4").unwrap();
        // cost 3 appears twice in C but projection merges duplicates.
        assert_eq!(t.len(), 1);
        assert_eq!(t.row(0).terms, vec![Term::int(3)]);
    }

    #[test]
    fn unknown_table_and_column_errors() {
        let (db, _) = table2_path_db();
        assert_eq!(
            query(&db, "SELECT a FROM Nope").unwrap_err(),
            SqlError::UnknownTable("Nope".into())
        );
        assert!(matches!(
            query(&db, "SELECT nope FROM P"),
            Err(SqlError::UnknownColumn(_))
        ));
    }

    #[test]
    fn ambiguous_column_detected() {
        let (db, _) = table2_path_db();
        // Both P and C have a `path` column.
        assert!(matches!(
            query(&db, "SELECT path FROM P, C"),
            Err(SqlError::AmbiguousColumn(_))
        ));
    }

    #[test]
    fn cartesian_when_no_join_predicate() {
        let (db, _) = table2_path_db();
        let t = query(&db, "SELECT P.dest, C.cost FROM P, C").unwrap();
        // 3 P rows × 3 C rows, projected to (dest, cost) with merging:
        // at most 9 rows.
        assert!(t.len() <= 9 && t.len() >= 4);
    }

    /// SQL and fauré-log must agree — the same query written both ways.
    #[test]
    fn sql_agrees_with_faurelog() {
        let (db, _) = table2_path_db();
        let via_sql = query(
            &db,
            "SELECT C.cost FROM P, C WHERE P.path = C.path AND P.dest = '1.2.3.4'",
        )
        .unwrap();
        let via_log = faure_core_equivalent(&db);
        let mut a: Vec<Vec<Term>> = via_sql.iter().map(|r| r.terms.clone()).collect();
        a.sort();
        assert_eq!(a, via_log);
    }

    /// Tiny helper: the same query through the deductive engine. Kept
    /// out-of-line so the storage crate does not depend on faure-core —
    /// we replicate the expected answer by hand instead.
    fn faure_core_equivalent(db: &Database) -> Vec<Vec<Term>> {
        // Manual join: P('1.2.3.4', p) ⋈ C(p, c) → c.
        let p = Table::from_relation(db.relation("P").unwrap());
        let c = Table::from_relation(db.relation("C").unwrap());
        let mut out = Vec::new();
        for (pi, mu) in p.find_matches(
            &db.cvars,
            &[Pattern::Exact(Term::sym("1.2.3.4")), Pattern::Any],
        ) {
            let prow = p.row(pi);
            for (ci, mu2) in c.find_matches(
                &db.cvars,
                &[Pattern::Exact(prow.terms[1].clone()), Pattern::Any],
            ) {
                let crow = c.row(ci);
                let cond = prow
                    .cond
                    .clone()
                    .and(crow.cond.clone())
                    .and(mu.clone())
                    .and(mu2);
                if faure_solver::satisfiable(&db.cvars, &cond).unwrap() {
                    out.push(vec![crow.terms[1].clone()]);
                }
            }
        }
        out.sort();
        out.dedup();
        out
    }
}
