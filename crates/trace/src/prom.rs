//! Prometheus text exposition (format version 0.0.4) and the scrape
//! endpoint.
//!
//! [`render_text`] turns a [`Snapshot`] into the plain-text format
//! every Prometheus-compatible scraper understands: counters and
//! gauges as single samples, the 32-bucket power-of-two
//! [`Histogram`]s as cumulative `_bucket` series with `le` upper
//! bounds in nanoseconds plus `_sum`/`_count`. [`render_jsonl`] is the
//! same snapshot as one JSON line, for the `--telemetry-jsonl`
//! append-only log.
//!
//! [`serve`] binds a stdlib `TcpListener` and answers `GET /metrics`
//! (text exposition of the registry, snapshotted per request) and
//! `GET /healthz` (`ok`) from a background thread. The handler is a
//! deliberately minimal HTTP/1.1 responder — one request per
//! connection, `Connection: close` — because its only clients are
//! scrapers and `curl`.

use crate::hist::{Histogram, BUCKETS};
use crate::json_escape;
use crate::telemetry::{Key, Registry, Snapshot};
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};

/// Content-Type header value for the text exposition format.
pub const CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

/// Escapes a label value per the exposition format (backslash, quote,
/// newline).
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Renders `{k="v",...}` for a key's labels, with `extra` (used for
/// `le`) appended; empty string when there are no labels at all.
fn label_block(key: &Key, extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = key
        .labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{v}\""));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

/// Emits one `# TYPE` header per metric name (names arrive sorted, so
/// a family's members are contiguous).
fn type_header(out: &mut String, last: &mut Option<String>, name: &str, kind: &str) {
    if last.as_deref() != Some(name) {
        let _ = writeln!(out, "# TYPE {name} {kind}");
        *last = Some(name.to_owned());
    }
}

/// Renders a snapshot as Prometheus text exposition v0.0.4.
pub fn render_text(snap: &Snapshot) -> String {
    let mut out = String::with_capacity(4096);
    let mut last: Option<String> = None;
    for (key, v) in &snap.counters {
        type_header(&mut out, &mut last, key.name, "counter");
        let _ = writeln!(out, "{}{} {v}", key.name, label_block(key, None));
    }
    last = None;
    for (key, v) in &snap.gauges {
        type_header(&mut out, &mut last, key.name, "gauge");
        let _ = writeln!(out, "{}{} {v}", key.name, label_block(key, None));
    }
    last = None;
    for (key, h) in &snap.hists {
        type_header(&mut out, &mut last, key.name, "histogram");
        render_histogram(&mut out, key, h);
    }
    out
}

/// The cumulative `_bucket` / `_sum` / `_count` series for one
/// histogram: all 32 power-of-two buckets, the last rendered as
/// `le="+Inf"` (its upper bound is open).
fn render_histogram(out: &mut String, key: &Key, h: &Histogram) {
    let counts = h.counts();
    let mut cumulative = 0u64;
    for (i, c) in counts.iter().enumerate() {
        cumulative = cumulative.saturating_add(*c);
        let le = if i + 1 == BUCKETS {
            "+Inf".to_owned()
        } else {
            Histogram::bucket_bounds(i).1.to_string()
        };
        let _ = writeln!(
            out,
            "{}_bucket{} {cumulative}",
            key.name,
            label_block(key, Some(("le", &le)))
        );
    }
    let _ = writeln!(
        out,
        "{}_sum{} {}",
        key.name,
        label_block(key, None),
        h.sum_ns()
    );
    let _ = writeln!(
        out,
        "{}_count{} {}",
        key.name,
        label_block(key, None),
        h.count()
    );
}

/// Flattened metric name for the JSONL rendering: `name` or
/// `name{k="v",...}` — the same identity the text exposition uses.
fn flat_name(key: &Key) -> String {
    format!("{}{}", key.name, label_block(key, None))
}

/// Renders a snapshot as one JSON line (no trailing newline):
/// `{"uptime_s":..,"counters":{..},"gauges":{..},"histograms":{..}}`.
/// Histograms are summarised as count/sum/mean — the full bucket
/// vectors live in the Prometheus endpoint; the JSONL log is for
/// cheap time-series plotting.
pub fn render_jsonl(snap: &Snapshot) -> String {
    let mut s = String::with_capacity(1024);
    let _ = write!(s, "{{\"uptime_s\":{:.3},", snap.uptime.as_secs_f64());
    s.push_str("\"counters\":{");
    for (i, (key, v)) in snap.counters.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "\"{}\":{v}", json_escape(&flat_name(key)));
    }
    s.push_str("},\"gauges\":{");
    for (i, (key, v)) in snap.gauges.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "\"{}\":{v}", json_escape(&flat_name(key)));
    }
    s.push_str("},\"histograms\":{");
    for (i, (key, h)) in snap.hists.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "\"{}\":{{\"count\":{},\"sum_ns\":{},\"mean_ns\":{}}}",
            json_escape(&flat_name(key)),
            h.count(),
            h.sum_ns(),
            h.mean_ns()
        );
    }
    s.push_str("}}");
    s
}

/// Handle to a running scrape endpoint. The background thread lives
/// for the rest of the process (scrapers may connect at any time);
/// there is deliberately no shutdown — process exit is the shutdown.
#[derive(Debug)]
pub struct TelemetryServer {
    /// The actually-bound address (resolves port 0 to the real port).
    pub addr: SocketAddr,
}

/// Binds `addr` (e.g. `127.0.0.1:9090`) and serves `/metrics` and
/// `/healthz` over the given registry from a background thread.
pub fn serve(addr: &str, registry: &'static Registry) -> std::io::Result<TelemetryServer> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    std::thread::Builder::new()
        .name("faure-telemetry".into())
        .spawn(move || {
            for stream in listener.incoming() {
                let Ok(stream) = stream else { continue };
                // One slow or broken scraper must not wedge the
                // endpoint forever; errors just drop the connection.
                let _ = handle(stream, registry);
            }
        })?;
    Ok(TelemetryServer { addr: local })
}

fn handle(stream: TcpStream, registry: &Registry) -> std::io::Result<()> {
    let _ = stream.set_read_timeout(Some(std::time::Duration::from_secs(5)));
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain the headers; the responder ignores them.
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 || line == "\r\n" || line == "\n" {
            break;
        }
    }
    let path = request_line.split_whitespace().nth(1).unwrap_or("/");
    let (status, ctype, body) = match path {
        "/metrics" => ("200 OK", CONTENT_TYPE, render_text(&registry.snapshot())),
        "/healthz" => ("200 OK", "text/plain; charset=utf-8", "ok\n".to_owned()),
        _ => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found\n".to_owned(),
        ),
    };
    let mut stream = reader.into_inner();
    write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {ctype}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::Registry;
    use std::io::Read;

    fn get(addr: SocketAddr, path: &str) -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        write!(s, "GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        let mut buf = String::new();
        s.read_to_string(&mut buf).unwrap();
        buf
    }

    fn leaked_registry() -> &'static Registry {
        Box::leak(Box::new(Registry::new()))
    }

    #[test]
    fn text_format_renders_all_metric_kinds() {
        let reg = Registry::new();
        reg.counter("faure_probes_total").add(42);
        reg.counter_with("faure_strata_total", &[("mode", "append")])
            .add(3);
        reg.gauge("faure_threads").set(4);
        reg.histogram("faure_latency_ns").observe_ns(100);
        reg.histogram("faure_latency_ns").observe_ns(5);
        let text = render_text(&reg.snapshot());
        assert!(text.contains("# TYPE faure_probes_total counter"), "{text}");
        assert!(text.contains("faure_probes_total 42"), "{text}");
        assert!(
            text.contains("faure_strata_total{mode=\"append\"} 3"),
            "{text}"
        );
        assert!(text.contains("# TYPE faure_threads gauge"), "{text}");
        assert!(text.contains("# TYPE faure_latency_ns histogram"), "{text}");
        assert!(text.contains("faure_latency_ns_count 2"), "{text}");
        assert!(text.contains("faure_latency_ns_sum 105"), "{text}");
        assert!(
            text.contains("faure_latency_ns_bucket{le=\"+Inf\"} 2"),
            "{text}"
        );
        // Cumulative: the 5ns sample is in le="8" and every later bucket.
        assert!(
            text.contains("faure_latency_ns_bucket{le=\"8\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("faure_latency_ns_bucket{le=\"128\"} 2"),
            "{text}"
        );
        // 32 bucket lines + sum + count for the one histogram.
        assert_eq!(
            text.lines()
                .filter(|l| l.starts_with("faure_latency_ns_bucket"))
                .count(),
            BUCKETS
        );
        // The process uptime gauge is always present.
        assert!(text.contains("faure_process_uptime_seconds"), "{text}");
    }

    #[test]
    fn type_headers_appear_once_per_family() {
        let reg = Registry::new();
        reg.counter_with("fam_total", &[("k", "a")]).inc();
        reg.counter_with("fam_total", &[("k", "b")]).inc();
        let text = render_text(&reg.snapshot());
        assert_eq!(
            text.matches("# TYPE fam_total counter").count(),
            1,
            "{text}"
        );
    }

    #[test]
    fn label_values_are_escaped() {
        let reg = Registry::new();
        reg.counter_with("esc_total", &[("p", "a\"b\\c\nd")]).inc();
        let text = render_text(&reg.snapshot());
        assert!(
            text.contains("esc_total{p=\"a\\\"b\\\\c\\nd\"} 1"),
            "{text}"
        );
    }

    #[test]
    fn jsonl_line_is_single_line_json() {
        let reg = Registry::new();
        reg.counter("c_total").add(7);
        reg.histogram("h_ns").observe_ns(10);
        let line = render_jsonl(&reg.snapshot());
        assert!(!line.contains('\n'));
        assert!(line.starts_with("{\"uptime_s\":"), "{line}");
        assert!(line.contains("\"c_total\":7"), "{line}");
        assert!(
            line.contains("\"h_ns\":{\"count\":1,\"sum_ns\":10,\"mean_ns\":10}"),
            "{line}"
        );
    }

    #[test]
    fn server_answers_metrics_healthz_and_404() {
        let reg = leaked_registry();
        reg.counter("faure_smoke_total").add(9);
        let server = serve("127.0.0.1:0", reg).unwrap();
        let metrics = get(server.addr, "/metrics");
        assert!(metrics.starts_with("HTTP/1.1 200 OK"), "{metrics}");
        assert!(metrics.contains("version=0.0.4"), "{metrics}");
        assert!(metrics.contains("faure_smoke_total 9"), "{metrics}");
        let health = get(server.addr, "/healthz");
        assert!(health.starts_with("HTTP/1.1 200 OK"), "{health}");
        assert!(health.ends_with("ok\n"), "{health}");
        let missing = get(server.addr, "/nope");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");
    }

    #[test]
    fn scrapes_are_monotone_across_publishes() {
        let reg = leaked_registry();
        let server = serve("127.0.0.1:0", reg).unwrap();
        reg.counter("mono_total").add(1);
        let first = get(server.addr, "/metrics");
        reg.counter("mono_total").add(2);
        let second = get(server.addr, "/metrics");
        let value = |text: &str| -> u64 {
            text.lines()
                .find(|l| l.starts_with("mono_total "))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
                .unwrap()
        };
        assert_eq!(value(&first), 1);
        assert_eq!(value(&second), 3);
    }
}
