//! Property tests for the hash-consed condition pool.
//!
//! The pool (`faure_ctable::pool`) is only allowed to *share* condition
//! trees, never to change them: interning performs no simplification,
//! and the pooled connectives must agree with the tree connectives
//! bit-for-bit (the solver memo keys and every stored row condition
//! depend on it). Three properties pin that down on random condition
//! trees — including degenerate shapes (`And([])`, `Or([c])`, nested
//! `Not`) that a simplifying interner would collapse:
//!
//! 1. **Round-trip identity**: `resolve(intern(c)) == c` structurally.
//! 2. **Idempotence / hash-consing**: interning the same tree twice
//!    (or a structurally equal clone) yields the same `CondId`, and
//!    id equality coincides with structural equality.
//! 3. **Pooled ops agree with tree ops**: `resolve(conj(a, b))` is
//!    exactly `resolve(a).and(resolve(b))` (same for `disj`/`or` and
//!    `neg`/`negate`), so code paths that moved from trees to ids
//!    produce byte-identical conditions.

use faure_ctable::pool::{self, CondId};
use faure_ctable::{CVarId, CmpOp, Condition, Const, LinExpr, Term};
use proptest::prelude::*;
use std::sync::Arc;

fn arb_term() -> impl Strategy<Value = Term> {
    prop_oneof![
        (-3i64..10).prop_map(Term::int),
        prop::sample::select(&["a", "b", "c", "d1"][..]).prop_map(Term::sym),
        prop::collection::vec(-2i64..5, 0..3)
            .prop_map(|xs| Term::Const(Const::list(xs.into_iter().map(Const::Int)))),
        (0u32..6).prop_map(|i| Term::Var(CVarId(i))),
    ]
}

fn arb_cmp() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ]
}

fn arb_leaf() -> impl Strategy<Value = Condition> {
    let term_atom =
        (arb_term(), arb_cmp(), arb_term()).prop_map(|(l, op, r)| Condition::cmp(l, op, r));
    let lin_atom = (
        prop::collection::vec((1i64..3, 0u32..6), 1..3),
        -2i64..6,
        arb_cmp(),
    )
        .prop_map(|(vars, c, op)| {
            let mut e = LinExpr::constant(c);
            for (coef, v) in vars {
                e = e.plus_var(coef, CVarId(v));
            }
            Condition::cmp(e, op, LinExpr::constant(0))
        });
    prop_oneof![
        Just(Condition::True),
        Just(Condition::False),
        term_atom,
        lin_atom,
    ]
}

/// Random condition trees. Deliberately built from the raw enum
/// constructors, not the smart connectives, so degenerate nodes
/// (`And([])`, `Or([c])`, `Not(Not(c))`) appear in the corpus — the
/// pool must round-trip those unchanged too.
fn arb_cond() -> impl Strategy<Value = Condition> {
    arb_leaf().prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..4).prop_map(|cs| Condition::And(Arc::new(cs))),
            prop::collection::vec(inner.clone(), 0..4).prop_map(|cs| Condition::Or(Arc::new(cs))),
            inner.prop_map(|c| Condition::Not(Arc::new(c))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn intern_resolve_round_trips(c in arb_cond()) {
        let id = pool::intern(&c);
        prop_assert_eq!(pool::resolve(id), c);
    }

    #[test]
    fn interning_is_idempotent_and_ids_mirror_structure(
        a in arb_cond(),
        b in arb_cond(),
    ) {
        let ia = pool::intern(&a);
        prop_assert_eq!(ia, pool::intern(&a), "same tree, same id");
        prop_assert_eq!(ia, pool::intern(&a.clone()), "clone, same id");
        let ib = pool::intern(&b);
        // O(1) id equality must coincide with structural equality.
        prop_assert_eq!(ia == ib, a == b);
    }

    #[test]
    fn pooled_connectives_agree_with_tree_connectives(
        a in arb_cond(),
        b in arb_cond(),
    ) {
        let (ia, ib) = (pool::intern(&a), pool::intern(&b));
        prop_assert_eq!(
            pool::resolve(pool::conj(ia, ib)),
            a.clone().and(b.clone()),
            "conj"
        );
        prop_assert_eq!(
            pool::resolve(pool::disj(ia, ib)),
            a.clone().or(b.clone()),
            "disj"
        );
        prop_assert_eq!(pool::resolve(pool::neg(ia)), a.negate(), "neg");
    }

    #[test]
    fn constants_keep_their_pinned_ids(c in arb_cond()) {
        // Whatever else gets interned, True and False keep the pinned
        // ids the storage layer's fast paths compare against.
        let _ = pool::intern(&c);
        prop_assert_eq!(pool::intern(&Condition::True), CondId::TRUE);
        prop_assert_eq!(pool::intern(&Condition::False), CondId::FALSE);
    }
}
