//! The verification tests and the escalation ladder.

use crate::constraint::Constraint;
use crate::verdict::{DirectVerdict, Level, RelativeVerdict, Report, Violation};
use faure_core::containment::{subsumes, ContainmentError, Subsumption};
use faure_core::update::{expand_constraint, Update, UpdateError};
use faure_core::{evaluate, EvalError, Program, GOAL};
use faure_ctable::{CVarRegistry, Database};
use faure_solver::SolverError;
use std::fmt;

/// Verification errors.
#[derive(Debug)]
pub enum VerifyError {
    /// Containment machinery failed.
    Containment(ContainmentError),
    /// Evaluation failed.
    Eval(EvalError),
    /// Update rewrite failed.
    Update(UpdateError),
    /// Solver failed while extracting witnesses.
    Solver(SolverError),
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::Containment(e) => write!(f, "{e}"),
            VerifyError::Eval(e) => write!(f, "{e}"),
            VerifyError::Update(e) => write!(f, "{e}"),
            VerifyError::Solver(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for VerifyError {}

impl From<ContainmentError> for VerifyError {
    fn from(e: ContainmentError) -> Self {
        VerifyError::Containment(e)
    }
}
impl From<EvalError> for VerifyError {
    fn from(e: EvalError) -> Self {
        VerifyError::Eval(e)
    }
}
impl From<UpdateError> for VerifyError {
    fn from(e: UpdateError) -> Self {
        VerifyError::Update(e)
    }
}
impl From<SolverError> for VerifyError {
    fn from(e: SolverError) -> Self {
        VerifyError::Solver(e)
    }
}

fn combined_program(known: &[Constraint]) -> Program {
    let mut p = Program::new();
    for c in known {
        p.extend(c.program.clone());
    }
    p
}

/// **Category (i)** (§5): using only the constraint definitions, prove
/// that the target is subsumed by the constraints known to hold. If
/// the known constraints hold after an (unknown) update, subsumption
/// guarantees the target does too.
pub fn category_i(
    known: &[Constraint],
    target: &Constraint,
    reg: &CVarRegistry,
) -> Result<RelativeVerdict, VerifyError> {
    let candidates = combined_program(known);
    match subsumes(&candidates, &target.program, reg)? {
        Subsumption::Subsumed => Ok(RelativeVerdict::Proven),
        Subsumption::NotShown { uncovered_rule } => Ok(RelativeVerdict::Unknown { uncovered_rule }),
    }
}

/// **Category (ii)** (§5, Listing 4): the update is also known.
/// Rewrite the target *through* the update — the rewritten constraint
/// holds before the update iff the target holds after it — then run
/// the category-(i) subsumption on the rewritten constraint.
pub fn category_ii(
    known: &[Constraint],
    target: &Constraint,
    update: &Update,
    reg: &CVarRegistry,
) -> Result<RelativeVerdict, VerifyError> {
    let rewritten = expand_constraint(&target.program, update)?;
    let candidates = combined_program(known);
    match subsumes(&candidates, &rewritten, reg)? {
        Subsumption::Subsumed => Ok(RelativeVerdict::Proven),
        Subsumption::NotShown { uncovered_rule } => Ok(RelativeVerdict::Unknown { uncovered_rule }),
    }
}

/// **Direct check**: full state available — evaluate the panic query.
/// Violations come with their conditions and a concrete witness world.
pub fn check_direct(target: &Constraint, db: &Database) -> Result<DirectVerdict, VerifyError> {
    let out = evaluate(&target.program, db)?;
    let Some(panic_rel) = out.relation(GOAL) else {
        return Ok(DirectVerdict::Holds);
    };
    let mut violations = Vec::new();
    for row in panic_rel.iter() {
        // The default evaluation already pruned unsatisfiable rows;
        // extract a witness for each survivor.
        if let Some(witness) = faure_solver::find_model(&out.database.cvars, &row.cond)? {
            violations.push(Violation {
                condition: row.cond.clone(),
                witness,
            });
        }
    }
    if violations.is_empty() {
        Ok(DirectVerdict::Holds)
    } else {
        Ok(DirectVerdict::Violated(violations))
    }
}

/// Enumerates up to `limit` concrete worlds (assignments of the
/// c-variables) in which the constraint is violated — e.g. *exactly
/// which failure combinations* break a reachability constraint.
/// Requires finite domains for the mentioned c-variables.
pub fn violation_scenarios(
    target: &Constraint,
    db: &Database,
    limit: usize,
) -> Result<Vec<faure_ctable::Assignment>, VerifyError> {
    let out = evaluate(&target.program, db)?;
    let Some(panic_rel) = out.relation(GOAL) else {
        return Ok(Vec::new());
    };
    let combined = faure_ctable::Condition::any(panic_rel.iter().map(|t| t.cond.clone()));
    Ok(faure_solver::all_models(
        &out.database.cvars,
        &combined,
        limit,
    )?)
}

/// Runs the escalation ladder: category (i), then — if the update is
/// known — category (ii), then — if the post-update state is known —
/// the direct check. Stops at the first decisive answer.
///
/// This is the paper's workflow: "the weaker test will succeed whenever
/// a decisive answer is permitted by the least amount of information,
/// and return with 'I don't know' only when more information is
/// needed. When the additional information becomes known, the stronger
/// test capable of processing it can be invoked."
pub fn verify(
    known: &[Constraint],
    target: &Constraint,
    update: Option<&Update>,
    post_state: Option<&Database>,
    reg: &CVarRegistry,
) -> Result<Report, VerifyError> {
    let mut attempts = Vec::new();

    let v1 = category_i(known, target, reg)?;
    attempts.push((Level::CategoryI, v1.proven()));
    if v1.proven() {
        return Ok(Report {
            constraint: target.name.clone(),
            attempts,
            outcome: Some(true),
            violations: vec![],
        });
    }

    if let Some(u) = update {
        let v2 = category_ii(known, target, u, reg)?;
        attempts.push((Level::CategoryII, v2.proven()));
        if v2.proven() {
            return Ok(Report {
                constraint: target.name.clone(),
                attempts,
                outcome: Some(true),
                violations: vec![],
            });
        }
    }

    if let Some(db) = post_state {
        let verdict = check_direct(target, db)?;
        let holds = verdict.holds();
        attempts.push((Level::Direct, holds));
        let violations = match verdict {
            DirectVerdict::Holds => vec![],
            DirectVerdict::Violated(v) => v,
        };
        return Ok(Report {
            constraint: target.name.clone(),
            attempts,
            outcome: Some(holds),
            violations,
        });
    }

    Ok(Report {
        constraint: target.name.clone(),
        attempts,
        outcome: None,
        violations: vec![],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use faure_net::enterprise;

    fn known() -> Vec<Constraint> {
        vec![
            Constraint::new("C_lb", enterprise::c_lb()).unwrap(),
            Constraint::new("C_s", enterprise::c_s()).unwrap(),
        ]
    }

    fn t1c() -> Constraint {
        Constraint::new("T1", enterprise::t1()).unwrap()
    }

    fn t2c() -> Constraint {
        Constraint::new("T2", enterprise::t2()).unwrap()
    }

    /// §5 category (i): T1 proven, T2 unknown.
    #[test]
    fn category_i_matches_paper() {
        let reg = enterprise::constraint_registry();
        assert!(category_i(&known(), &t1c(), &reg).unwrap().proven());
        assert!(!category_i(&known(), &t2c(), &reg).unwrap().proven());
    }

    /// §5 category (ii): with the Listing 4 update, T2 becomes provable.
    #[test]
    fn category_ii_matches_paper() {
        let reg = enterprise::constraint_registry();
        let update = enterprise::listing4_update();
        assert!(category_ii(&known(), &t2c(), &update, &reg)
            .unwrap()
            .proven());
    }

    #[test]
    fn ladder_stops_at_category_i_for_t1() {
        let reg = enterprise::constraint_registry();
        let report = verify(&known(), &t1c(), None, None, &reg).unwrap();
        assert_eq!(report.outcome, Some(true));
        assert_eq!(report.decided_by(), Some(Level::CategoryI));
        assert_eq!(report.attempts.len(), 1);
    }

    #[test]
    fn ladder_escalates_to_category_ii_for_t2() {
        let reg = enterprise::constraint_registry();
        let update = enterprise::listing4_update();
        let report = verify(&known(), &t2c(), Some(&update), None, &reg).unwrap();
        assert_eq!(report.outcome, Some(true));
        assert_eq!(report.decided_by(), Some(Level::CategoryII));
        assert_eq!(report.attempts.len(), 2);
    }

    #[test]
    fn ladder_reports_unknown_without_update_or_state() {
        let reg = enterprise::constraint_registry();
        let report = verify(&known(), &t2c(), None, None, &reg).unwrap();
        assert_eq!(report.outcome, None);
        assert!(report.to_string().contains("UNKNOWN"));
    }

    #[test]
    fn direct_check_holds_on_compliant_state() {
        let (db, _) = enterprise::compliant_net();
        assert!(check_direct(&t2c(), &db).unwrap().holds());
        assert!(check_direct(&t1c(), &db).unwrap().holds());
    }

    #[test]
    fn direct_check_witnesses_violations() {
        let (db, _) = enterprise::t2_violating_net();
        match check_direct(&t2c(), &db).unwrap() {
            DirectVerdict::Violated(vs) => {
                assert!(!vs.is_empty());
            }
            DirectVerdict::Holds => panic!("T2 must be violated"),
        }
    }

    #[test]
    fn ladder_falls_through_to_direct() {
        let reg = enterprise::constraint_registry();
        let (db, _) = enterprise::t2_violating_net();
        // No update known, state known: category (i) unknown → direct
        // finds the violation.
        let report = verify(&known(), &t2c(), None, Some(&db), &reg).unwrap();
        assert_eq!(report.outcome, Some(false));
        assert_eq!(report.decided_by(), Some(Level::Direct));
        assert!(!report.violations.is_empty());
    }

    /// All violating failure scenarios can be enumerated: a
    /// reachability constraint over the Figure 1 FRR config.
    #[test]
    fn violation_scenarios_enumerate_failure_combos() {
        use faure_net::{frr, queries};
        let (db, _) = frr::figure1_database();
        // Materialise reachability, then demand R(1, 2, 5) — node 2
        // must reach node 5. It fails only when ȳ = 1 ∧ z̄ = 0? No:
        // with ȳ=1 traffic goes 2→3, then 3→5 (z̄=1) or 3→4→5 (z̄=0);
        // with ȳ=0 it goes 2→4→5. So 2 always reaches 5 — use a pair
        // that CAN fail instead: node 3 reaches node 2? Never (no
        // edges back) → violated in all 8 worlds.
        let out = faure_core::evaluate(&queries::reachability_program(), &db).unwrap();
        let cons = Constraint::parse("conn", "panic :- Node(n), !R(1, 3, 2).\nNode(1).\n").unwrap();
        let scenarios = violation_scenarios(&cons, &out.database, 100).unwrap();
        // The violation is unconditional (no edge ever leads back to
        // 2 from 3): one scenario binding no variables = "always".
        assert_eq!(scenarios.len(), 1);
        assert!(scenarios[0].is_empty());

        // A genuinely conditional violation: node 1 must reach node 4.
        // 1→4 exists via 1→2→4 (x̄=1,ȳ=0), 1→2→3→4 (x̄=1,ȳ=1,z̄=0), or
        // 1→3→4 (x̄=0,z̄=0); it FAILS exactly when the in-use branch
        // ends at 5 instead: {x̄=1,ȳ=1,z̄=1}, {x̄=0,z̄=1}.
        let cond = Constraint::parse("to4", "panic :- Node(n), !R(1, 1, 4).\nNode(1).\n").unwrap();
        let scenarios = violation_scenarios(&cond, &out.database, 100).unwrap();
        // Over the mentioned variables: x̄=1,ȳ=1,z̄=1 plus x̄=0,z̄=1 with
        // ȳ free = 3 total assignments of {x̄,ȳ,z̄}.
        assert_eq!(scenarios.len(), 3);
        for s in &scenarios {
            // Every returned scenario has z̄ = 1 (the 3→5 link up).
            let z = *s
                .iter()
                .find(|(v, _)| out.database.cvars.name(**v) == "z")
                .expect("z̄ bound")
                .1
                == faure_ctable::Const::Int(1);
            assert!(z, "all violating scenarios keep the 3→5 link up");
        }

        // And a constraint that never fires yields no scenarios.
        let fine = Constraint::parse("fine", "panic :- Node(n), !R(1, 1, 5).\nNode(1).\n").unwrap();
        assert!(violation_scenarios(&fine, &out.database, 100)
            .unwrap()
            .is_empty());
    }

    /// A conditional violation produces a world witness.
    #[test]
    fn conditional_violation_has_witness() {
        use faure_ctable::{CTuple, Term};
        let (mut db, vars) = enterprise::empty_net();
        // Mkt→CS on unknown port, load-balanced, firewalled — but C_lb
        // requires port 7000, and p̄ is unknown.
        db.insert(
            "R",
            CTuple::new([Term::sym("Mkt"), Term::sym("CS"), Term::Var(vars.p)]),
        )
        .unwrap();
        db.insert("Lb", CTuple::new([Term::sym("Mkt"), Term::sym("CS")]))
            .unwrap();
        db.insert("Fw", CTuple::new([Term::sym("Mkt"), Term::sym("CS")]))
            .unwrap();
        let clb = Constraint::new("C_lb", enterprise::c_lb()).unwrap();
        match check_direct(&clb, &db).unwrap() {
            DirectVerdict::Violated(vs) => {
                // Witness must assign p̄ ∈ {80, 344} (≠ 7000).
                let w = &vs[0].witness;
                let val = w.get(vars.p).expect("p̄ assigned").as_int().unwrap();
                assert_ne!(val, 7000);
            }
            DirectVerdict::Holds => panic!("expected conditional violation"),
        }
    }
}
