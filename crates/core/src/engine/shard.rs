//! Sharded semi-naive fixpoint: partitioned deltas with routed
//! exchange.
//!
//! The single-space driver ([`super::fixpoint`]) runs every delta pass
//! on one thread (parallelising only *inside* a pass) and keeps one
//! delta table per predicate. This driver partitions each predicate's
//! delta across `opts.shards` **worker shards** on the
//! [`ShardPlan`](crate::plan::ShardPlan) key column: every shard owns a
//! real columnar [`Table`] per predicate holding exactly the delta rows
//! whose key hashes to it, runs the pass locally against the shared
//! accumulated tables, and the changed rows it derives are *routed* to
//! the shard that owns them — not recomputed there.
//!
//! ## Delta exchange
//!
//! Workers stream their derived rows to the driver through one bounded
//! [`sync_channel`] in fixed-size [`Batch`]es (`(producer, seq)`
//! stamped), so a fast shard blocks on a slow consumer instead of
//! buffering unboundedly. The driver drains the channel while the
//! workers run, then — at the pass barrier — replays the batches in
//! **`(producer, seq)` order** into the accumulated table and the next
//! delta partitions. That replay order is fixed by the shard plan, not
//! by thread scheduling, which is the sharded analogue of
//! [`Table::absorb_partitions`]' chunk-order merge.
//!
//! ## Determinism
//!
//! Routing is a pure function of the row's key constant
//! ([`faure_storage::shard::route_term`] — a stable FNV-1a hash), so a
//! fixed shard count always partitions the same rows the same way, and
//! the barrier merge order above is schedule-independent. Derived rows
//! and their *canonicalized* conditions are identical to the
//! single-space run at every shard count; stored-condition spelling and
//! row order may differ (the merge interleaves producers differently
//! than one serial scan), as may delta-size and solver counters when
//! broadcasts duplicate work — all of it deterministic for a fixed
//! shard count. The `shard_differential` suite pins this down at
//! 1/2/4/8 shards on the shared corpus, composed with incremental
//! `apply`.
//!
//! ## Broadcast fallback
//!
//! A changed row whose key cell holds a **c-variable** has no ground
//! value to hash, so no single shard can own it: it is appended to
//! *every* shard's partition. The duplicate downstream derivations this
//! causes are absorbed by the table's dedup-by-terms insert and the
//! idempotent condition merge, so results are unaffected.
//!
//! Negation needs no special handling: stratification guarantees
//! negated predicates are complete before this stratum runs, and the
//! accumulated tables workers read are only mutated at pass barriers.

use super::rule::eval_rule;
use super::{Ctx, EvalError, EvalOptions, PrunePolicy};
use crate::ast::Rule;
use crate::plan::PlanCache;
use faure_solver::Session;
use faure_storage::shard::{route_term, Route};
use faure_storage::{OpStats, PhaseStats, PreparedRow, Table};
use faure_trace::Tracer;
use std::collections::{BTreeSet, HashMap};
use std::sync::mpsc::sync_channel;
use std::sync::Arc;
use std::time::Instant;

/// Rows per exchanged batch. Small enough that the bounded channel
/// exerts real backpressure on skewed passes, large enough that the
/// per-batch overhead (one channel rendezvous) stays negligible.
const BATCH_ROWS: usize = 2048;

/// One delta exchange message: `rows` derived by shard `producer`,
/// `seq`-numbered so the barrier merge can replay batches in a
/// schedule-independent order.
struct Batch {
    producer: usize,
    seq: u64,
    rows: Vec<PreparedRow>,
}

/// Per-shard delta partitions: `parts[s][pred]` holds the delta rows
/// shard `s` owns for `pred`.
type Partitions = Vec<HashMap<String, Table>>;

#[allow(clippy::too_many_arguments)]
pub(super) fn eval_stratum_sharded<'a>(
    ctx: &Ctx<'a>,
    rules: &[(usize, &Rule)],
    stratum_preds: &BTreeSet<&str>,
    tables: &mut HashMap<String, Table>,
    plans: &mut PlanCache,
    session: &mut Session,
    opts: &EvalOptions,
    stats: &mut PhaseStats,
) -> Result<(), EvalError> {
    let n = opts.shards;
    debug_assert!(n > 1);
    stats.shard.shards = stats.shard.shards.max(n);
    // Workers must not re-partition their pass (they *are* the
    // partitioning) nor emit trace events (event order would depend on
    // scheduling); each gets a disabled tracer and a serial option set.
    let wopts = EvalOptions {
        threads: 1,
        ..*opts
    };
    let shard_ctxs: Vec<Ctx<'a>> = (0..n)
        .map(|_| Ctx {
            cvmap: ctx.cvmap,
            reg_snapshot: ctx.reg_snapshot.clone(),
            shared_memo: Arc::clone(&ctx.shared_memo),
            tracer: Tracer::disabled(),
            shard_plan: ctx.shard_plan.clone(),
        })
        .collect();

    // Iteration 0: exactly the single-space seed pass (every rule over
    // the full tables, driver session, in-pass parallelism per
    // `opts.threads`) — only the changed rows are routed into per-shard
    // partitions instead of one delta map.
    let t_iter = ctx.tracer.now_ns();
    let mut parts: Partitions = (0..n).map(|_| HashMap::new()).collect();
    for &(ri, rule) in rules {
        let plan = plans.get_or_compile(ri, rule, None);
        let derived = eval_rule(
            ctx,
            ri,
            rule,
            plan,
            tables,
            None,
            session,
            opts,
            &mut stats.ops,
        )?;
        let head = rule.head.pred.as_str();
        merge_routed(ctx, head, None, derived, tables, &mut parts, stats)?;
    }
    let delta_rows = record_delta_size(&parts, stats);
    super::publish::publish_iteration(delta_rows);
    ctx.tracer
        .emit_span("fixpoint", "iteration", t_iter, 0, || {
            vec![
                ("iteration", 0usize.into()),
                ("delta_rows", delta_rows.into()),
                ("shards", n.into()),
            ]
        });

    let mut iterations = 0usize;
    while parts.iter().any(|m| !m.is_empty()) {
        iterations += 1;
        if iterations > opts.max_iterations {
            return Err(EvalError::IterationLimit {
                limit: opts.max_iterations,
            });
        }
        let t_iter = ctx.tracer.now_ns();
        if opts.prune == PrunePolicy::EveryIteration {
            // Deterministic sweep order: predicate (BTreeSet), then
            // shard 0..n; one span for the whole sweep, like the
            // single-space driver.
            let t_prune = ctx.tracer.now_ns();
            let wall = Instant::now();
            let mut removed = 0usize;
            let mut rows = 0usize;
            for p in stratum_preds {
                for m in parts.iter_mut() {
                    let Some(t) = m.get_mut(*p) else { continue };
                    rows += t.len();
                    removed += if opts.threads > 1 {
                        t.prune_parallel(
                            &ctx.reg_snapshot,
                            session,
                            &ctx.shared_memo,
                            opts.threads,
                        )?
                    } else {
                        t.prune(&ctx.reg_snapshot, session)?
                    };
                }
            }
            stats.prune_wall += wall.elapsed();
            super::publish::publish_prune(rows, removed);
            ctx.tracer.emit_span("eval", "prune", t_prune, 0, || {
                vec![
                    ("pred", "(delta)".into()),
                    ("rows", rows.into()),
                    ("removed", removed.into()),
                    ("threads", opts.threads.into()),
                ]
            });
            for m in parts.iter_mut() {
                m.retain(|_, t| !t.is_empty());
            }
            if parts.iter().all(HashMap::is_empty) {
                break;
            }
        }
        let mut next: Partitions = (0..n).map(|_| HashMap::new()).collect();
        for &(ri, rule) in rules {
            for (pos, lit) in rule.body.iter().enumerate() {
                if lit.is_negative() {
                    continue;
                }
                let p = lit.atom().pred.as_str();
                if !stratum_preds.contains(p) {
                    continue;
                }
                if parts.iter().all(|m| m.get(p).is_none_or(Table::is_empty)) {
                    continue;
                }
                let plan = plans.get_or_compile(ri, rule, Some(pos));
                run_sharded_pass(
                    ctx,
                    &shard_ctxs,
                    ri,
                    rule,
                    plan,
                    p,
                    tables,
                    &parts,
                    &mut next,
                    session,
                    &wopts,
                    stats,
                )?;
            }
        }
        parts = next;
        let delta_rows = record_delta_size(&parts, stats);
        super::publish::publish_iteration(delta_rows);
        let iteration = iterations;
        ctx.tracer
            .emit_span("fixpoint", "iteration", t_iter, 0, || {
                vec![
                    ("iteration", iteration.into()),
                    ("delta_rows", delta_rows.into()),
                    ("shards", n.into()),
                ]
            });
    }
    Ok(())
}

/// One sharded `(rule, delta slot)` pass: every shard with a non-empty
/// delta partition for `delta_pred` evaluates the rule against it on
/// its own thread, streaming derived rows back in bounded batches; at
/// the barrier the driver replays the batches in `(producer, seq)`
/// order into the accumulated table and routes the changed rows into
/// `next`.
#[allow(clippy::too_many_arguments)]
fn run_sharded_pass<'a>(
    ctx: &Ctx<'a>,
    shard_ctxs: &[Ctx<'a>],
    ri: usize,
    rule: &Rule,
    plan: &crate::plan::RulePlan,
    delta_pred: &str,
    tables: &mut HashMap<String, Table>,
    parts: &Partitions,
    next: &mut Partitions,
    session: &mut Session,
    wopts: &EvalOptions,
    stats: &mut PhaseStats,
) -> Result<(), EvalError> {
    let n = shard_ctxs.len();
    let t_pass = ctx.tracer.now_ns();
    let mut batches: Vec<Batch> = Vec::new();
    let mut worker_errs: Vec<Option<EvalError>> = Vec::new();
    let tables_ref: &HashMap<String, Table> = tables;

    std::thread::scope(|scope| {
        // Capacity n: every live worker can have one batch in flight
        // before the producer of the next one blocks — bounded memory,
        // real backpressure.
        let (tx, rx) = sync_channel::<Batch>(n);
        let mut handles = Vec::with_capacity(n);
        for (s, wctx) in shard_ctxs.iter().enumerate() {
            let Some(delta) = parts[s].get(delta_pred).filter(|t| !t.is_empty()) else {
                handles.push(None);
                continue;
            };
            let tx = tx.clone();
            handles.push(Some(scope.spawn(move || {
                let wall = Instant::now();
                let mut wsession = Session::with_shared(Arc::clone(&wctx.shared_memo));
                wsession.set_shard_tag(u8::try_from(s + 1).unwrap_or(u8::MAX));
                let mut wops = OpStats::default();
                let out = eval_rule(
                    wctx,
                    ri,
                    rule,
                    plan,
                    tables_ref,
                    Some(delta),
                    &mut wsession,
                    wopts,
                    &mut wops,
                );
                let err = match out {
                    Ok(partitions) => {
                        let mut seq = 0u64;
                        let mut rows = Vec::with_capacity(BATCH_ROWS.min(64));
                        for prow in partitions.into_iter().flatten() {
                            rows.push(prow);
                            if rows.len() >= BATCH_ROWS {
                                let full = std::mem::take(&mut rows);
                                if tx
                                    .send(Batch {
                                        producer: s,
                                        seq,
                                        rows: full,
                                    })
                                    .is_err()
                                {
                                    break;
                                }
                                seq += 1;
                            }
                        }
                        if !rows.is_empty() {
                            let _ = tx.send(Batch {
                                producer: s,
                                seq,
                                rows,
                            });
                        }
                        None
                    }
                    Err(e) => Some(e),
                };
                (wsession.stats(), wops, wall.elapsed(), err)
            })));
        }
        drop(tx);
        // Drain while workers run — this is what lets the bounded
        // channel block producers without deadlocking the barrier.
        for batch in rx {
            batches.push(batch);
        }
        for (s, handle) in handles.into_iter().enumerate() {
            let Some(handle) = handle else {
                worker_errs.push(None);
                continue;
            };
            let (wstats, wops, wall, err) = handle.join().expect("shard worker panicked");
            // Shard-order absorption keeps the stats merge order
            // deterministic even though completion order is not.
            session.absorb_stats(&wstats);
            stats.ops.absorb(&wops);
            stats.shard.record_wall(s, wall);
            worker_errs.push(err);
        }
    });
    // First error by lowest shard index, mirroring the parallel rule
    // pass's lowest-chunk rule.
    if let Some(e) = worker_errs.into_iter().flatten().next() {
        return Err(e);
    }

    batches.sort_by_key(|b| (b.producer, b.seq));
    stats.shard.exchanged_batches += batches.len() as u64;
    stats.shard.passes += 1;
    let head = rule.head.pred.as_str();
    let routed_before = stats.shard.routed_rows;
    let broadcast_before = stats.shard.broadcast_rows;
    let batch_count = batches.len();
    let mut rows_out = 0usize;
    for batch in batches {
        rows_out += batch.rows.len();
        let producer = batch.producer;
        merge_routed(
            ctx,
            head,
            Some(producer),
            vec![batch.rows],
            tables,
            next,
            stats,
        )?;
    }
    let routed = stats.shard.routed_rows - routed_before;
    let broadcast = stats.shard.broadcast_rows - broadcast_before;
    super::publish::publish_shard_pass(n, batch_count as u64, rows_out, routed, broadcast);
    ctx.tracer
        .emit_span("fixpoint", "shard-pass", t_pass, 0, || {
            vec![
                ("rule", ri.into()),
                ("head", head.into()),
                ("delta_pred", delta_pred.into()),
                ("shards", n.into()),
                ("batches", batch_count.into()),
                ("rows_out", rows_out.into()),
                ("routed", routed.into()),
                ("broadcast", broadcast.into()),
            ]
        });
    Ok(())
}

/// Merges derived partitions into the accumulated table in partition
/// order and routes each *changed* row (new terms or new disjunct) into
/// the delta partition of the shard that owns its key — or into every
/// partition when the key cell is a c-variable (broadcast). `producer`
/// is the shard that derived the rows (`None` for the seed pass, which
/// the driver runs itself); only copies landing on a different shard
/// count as routed.
fn merge_routed(
    ctx: &Ctx<'_>,
    pred: &str,
    producer: Option<usize>,
    derived: Vec<Vec<PreparedRow>>,
    tables: &mut HashMap<String, Table>,
    parts: &mut Partitions,
    stats: &mut PhaseStats,
) -> Result<(), EvalError> {
    if derived.iter().all(Vec::is_empty) {
        return Ok(());
    }
    let n = parts.len();
    let key = ctx.shard_plan.key_for(pred);
    let table = tables.get_mut(pred).expect("table created in setup");
    let schema = table.schema.clone();
    // Guard against an out-of-range key (cannot happen through
    // `set_shard_keys`, which validates): fall back to column 0.
    let key = if key < schema.arity() { key } else { 0 };
    let mut routed = 0u64;
    let mut broadcast = 0u64;
    table.absorb_partitions(derived, |prow| match route_term(&prow.terms()[key], n) {
        Route::To(owner) => {
            parts[owner]
                .entry(pred.to_owned())
                .or_insert_with(|| Table::new(schema.clone()))
                .insert_prepared(prow)
                .expect("delta schema matches the full table");
            if producer != Some(owner) {
                routed += 1;
            }
        }
        Route::Broadcast => {
            broadcast += 1;
            for (s, part) in parts.iter_mut().enumerate() {
                part.entry(pred.to_owned())
                    .or_insert_with(|| Table::new(schema.clone()))
                    .insert_prepared(prow)
                    .expect("delta schema matches the full table");
                if producer != Some(s) {
                    routed += 1;
                }
            }
        }
    })?;
    stats.shard.routed_rows += routed;
    stats.shard.broadcast_rows += broadcast;
    Ok(())
}

/// Records the total delta size of a just-finished iteration across
/// all shard partitions (broadcast rows count once per partition; the
/// sum is deterministic for a fixed shard count). The terminating
/// empty delta is not recorded, like the single-space driver.
fn record_delta_size(parts: &Partitions, stats: &mut PhaseStats) -> usize {
    let total: usize = parts.iter().flat_map(|m| m.values().map(Table::len)).sum();
    if total > 0 {
        stats.delta_sizes.push(total);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::super::{canonicalize, evaluate_with, EvalOptions, EvalOutput};
    use crate::parser::parse_program;
    use faure_ctable::{CTuple, Database, Domain, Schema, Term};
    use std::collections::BTreeSet;

    const TC: &str = "R(a, b) :- E(a, b).\nR(a, c) :- E(a, b), R(b, c).\n";

    fn snapshot(out: &EvalOutput, pred: &str) -> BTreeSet<String> {
        out.relation(pred)
            .expect("relation exists")
            .iter()
            .map(|t| format!("{:?} | {:?}", t.terms, canonicalize(t.cond.clone())))
            .collect()
    }

    fn eval_at(db: &Database, src: &str, shards: usize) -> EvalOutput {
        let program = parse_program(src).unwrap();
        let opts = EvalOptions {
            shards,
            ..EvalOptions::default()
        };
        evaluate_with(&program, db, &opts).expect("evaluation succeeds")
    }

    fn chain_db(n: i64) -> Database {
        let mut db = Database::new();
        db.create_relation(Schema::new("E", &["a", "b"])).unwrap();
        for i in 0..n {
            db.insert("E", CTuple::new([Term::int(i), Term::int(i + 1)]))
                .unwrap();
        }
        db
    }

    /// Shards with no delta rows must neither stall the barrier nor
    /// change results: more shards than chain nodes leaves most shards
    /// permanently empty.
    #[test]
    fn empty_shards_are_harmless() {
        let db = chain_db(3);
        let serial = snapshot(&eval_at(&db, TC, 1), "R");
        let sharded = eval_at(&db, TC, 8);
        assert_eq!(serial, snapshot(&sharded, "R"));
        assert_eq!(sharded.stats.shard.shards, 8);
    }

    /// Every delta row hashing to one shard (a single source vertex, so
    /// every derived `R` row has the same key constant) degenerates to
    /// a serial run on one worker — and must still converge and agree.
    #[test]
    fn single_hot_shard_converges() {
        let mut db = Database::new();
        db.create_relation(Schema::new("E", &["a", "b"])).unwrap();
        // Star from 0: all R rows have key column 0 = 0.
        for i in 1..6 {
            db.insert("E", CTuple::new([Term::int(0), Term::int(i)]))
                .unwrap();
        }
        // One chain hop so the fixpoint actually iterates.
        db.insert("E", CTuple::new([Term::int(1), Term::int(7)]))
            .unwrap();
        let serial = snapshot(&eval_at(&db, TC, 1), "R");
        let sharded = eval_at(&db, TC, 4);
        assert_eq!(serial, snapshot(&sharded, "R"));
        // Key constant 0 owns every non-broadcast row: whichever shard
        // that is, the row volume must not have been split.
        assert!(sharded.stats.shard.passes > 0, "sharded passes ran");
    }

    /// Regression: a c-variable in the partition-key column cannot be
    /// hashed and must fall back to broadcast routing — every shard
    /// sees the row, and results still match the single-space engine.
    #[test]
    fn cvar_key_cells_broadcast() {
        let mut db = Database::new();
        let x = db.fresh_cvar("x", Domain::Ints(vec![0, 1, 2]));
        db.create_relation(Schema::new("E", &["a", "b"])).unwrap();
        // Key column 0 of the derived R rows inherits E's first column:
        // make it a c-variable so seed routing must broadcast.
        db.insert("E", CTuple::new([Term::Var(x), Term::int(1)]))
            .unwrap();
        db.insert("E", CTuple::new([Term::int(1), Term::int(2)]))
            .unwrap();
        db.insert("E", CTuple::new([Term::int(2), Term::int(0)]))
            .unwrap();
        let serial = snapshot(&eval_at(&db, TC, 1), "R");
        let sharded = eval_at(&db, TC, 4);
        assert_eq!(serial, snapshot(&sharded, "R"));
        assert!(
            sharded.stats.shard.broadcast_rows > 0,
            "c-var key rows must take the broadcast fallback, got {:?}",
            sharded.stats.shard
        );
        // And the broadcast copies count as routed to non-producers.
        assert!(sharded.stats.shard.routed_rows >= sharded.stats.shard.broadcast_rows);
    }

    /// A ground-keyed run routes without broadcasting.
    #[test]
    fn ground_keys_never_broadcast() {
        let db = chain_db(6);
        let sharded = eval_at(&db, TC, 4);
        assert_eq!(sharded.stats.shard.broadcast_rows, 0);
        assert!(
            sharded.stats.shard.routed_rows > 0,
            "a chain fixpoint must route rows across shards, got {:?}",
            sharded.stats.shard
        );
        assert!(sharded.stats.shard.exchanged_batches > 0);
    }
}
