//! Static analysis of fauré-log programs: safety (range restriction),
//! stratification, and the diagnostic passes behind `faure check`.
//!
//! *Safety* ensures evaluation terminates with finite answers: every
//! rule variable in the head, in a negated atom, or in a comparison
//! must be bound by a positive body atom.
//!
//! *Stratification* orders predicates so that a negated atom's relation
//! is fully computed before the negation is evaluated — the usual
//! stratified-datalog semantics the paper adopts for recursion plus
//! "not derivable" negation (§3, §6: "recursive fauré-log is
//! implemented by stratification").
//!
//! The fail-fast [`check_safety`] / [`stratify`] pair is what
//! evaluation uses as hard gates. On top of them, [`analyze`] runs a
//! **non-fail-fast** battery of passes and collects *every* problem it
//! can find as a [`Finding`]:
//!
//! 1. safety violations (all of them, not just the first);
//! 2. negative recursion (every predicate on a cycle through negation);
//! 3. arity consistency across all uses of a predicate (and against
//!    database schemas when a database is supplied);
//! 4. head predicates shadowing an input (EDB) relation;
//! 5. dead rules — rules whose positive body depends on a provably
//!    empty predicate — and references to undefined relations;
//! 6. singleton (likely misspelled) rule variables;
//! 7. statically unsatisfiable comparison conjunctions (via the
//!    solver's structural simplification plus interval reasoning,
//!    e.g. `x < 2, x > 5`).
//!
//! The `faure-analyze` crate maps findings to stable `F000x` error
//! codes, attaches source spans, and renders them.

use crate::ast::{ArgTerm, CompExpr, Comparison, Literal, Program, Rule};
use faure_ctable::{
    Atom, CVarId, CVarRegistry, CmpOp, Condition, Const, Database, Domain, Expr, LinExpr, Term,
};
use faure_solver::simplify;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Static-analysis errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnalysisError {
    /// A rule variable is not bound by any positive body atom.
    UnsafeVariable {
        /// The offending rule (rendered).
        rule: String,
        /// The unbound variable.
        variable: String,
    },
    /// The program has negation through recursion (no stratification).
    NotStratifiable {
        /// A predicate on the offending negative cycle.
        predicate: String,
    },
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::UnsafeVariable { rule, variable } => {
                write!(f, "unsafe variable `{variable}` in rule `{rule}`")
            }
            AnalysisError::NotStratifiable { predicate } => write!(
                f,
                "program is not stratifiable: predicate `{predicate}` is on a cycle through negation"
            ),
        }
    }
}

impl std::error::Error for AnalysisError {}

/// Checks range restriction for one rule.
pub fn check_rule_safety(rule: &Rule) -> Result<(), AnalysisError> {
    let bound: BTreeSet<&str> = rule
        .body
        .iter()
        .filter(|l| !l.is_negative())
        .flat_map(|l| l.atom().variables())
        .collect();
    let mut need: Vec<&str> = rule.head.variables().collect();
    for lit in rule.body.iter().filter(|l| l.is_negative()) {
        need.extend(lit.atom().variables());
    }
    for cmp in &rule.comparisons {
        need.extend(cmp.variables());
    }
    for v in need {
        if !bound.contains(v) {
            return Err(AnalysisError::UnsafeVariable {
                rule: rule.to_string(),
                variable: v.to_owned(),
            });
        }
    }
    Ok(())
}

/// Checks safety of every rule in the program.
pub fn check_safety(program: &Program) -> Result<(), AnalysisError> {
    for r in &program.rules {
        check_rule_safety(r)?;
    }
    Ok(())
}

/// A stratification: rule indices grouped by stratum, lowest first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stratification {
    /// Stratum number per predicate.
    pub pred_stratum: BTreeMap<String, usize>,
    /// Rule indices per stratum.
    pub strata: Vec<Vec<usize>>,
}

/// Computes a stratification of the program, or reports a negative
/// cycle.
///
/// Uses the textbook iterative algorithm: `stratum(p) ≥ stratum(q)`
/// when `p` depends positively on IDB predicate `q`, and
/// `stratum(p) > stratum(q)` when the dependency is through negation.
/// If a stratum value exceeds the number of IDB predicates the program
/// contains a cycle through negation.
pub fn stratify(program: &Program) -> Result<Stratification, AnalysisError> {
    let idb: BTreeSet<&str> = program.idb_predicates();
    let mut stratum: BTreeMap<&str, usize> = idb.iter().map(|&p| (p, 0)).collect();
    let n = idb.len().max(1);

    let mut changed = true;
    let mut rounds = 0usize;
    while changed {
        changed = false;
        rounds += 1;
        if rounds > n * n + 1 {
            // Should be caught by the bound check below, but guard anyway.
            break;
        }
        for rule in &program.rules {
            let head = rule.head.pred.as_str();
            let mut min_head = stratum[head];
            for lit in &rule.body {
                let p = lit.atom().pred.as_str();
                if !idb.contains(p) {
                    continue; // EDB predicates live in stratum 0
                }
                let required = match lit {
                    Literal::Pos(_) => stratum[p],
                    Literal::Neg(_) => stratum[p] + 1,
                };
                min_head = min_head.max(required);
            }
            if min_head > stratum[head] {
                if min_head > n {
                    return Err(AnalysisError::NotStratifiable {
                        predicate: head.to_owned(),
                    });
                }
                stratum.insert(head, min_head);
                changed = true;
            }
        }
    }

    let max_stratum = stratum.values().copied().max().unwrap_or(0);
    let mut strata: Vec<Vec<usize>> = vec![Vec::new(); max_stratum + 1];
    for (idx, rule) in program.rules.iter().enumerate() {
        strata[stratum[rule.head.pred.as_str()]].push(idx);
    }
    Ok(Stratification {
        pred_stratum: stratum
            .into_iter()
            .map(|(k, v)| (k.to_owned(), v))
            .collect(),
        strata,
    })
}

// ---------------------------------------------------------------------------
// multi-pass, non-fail-fast analysis
// ---------------------------------------------------------------------------

/// One problem discovered by [`analyze`].
///
/// Every variant carries the index of the rule it concerns (into
/// `program.rules`), plus whatever finer-grained structural indices the
/// renderer needs to attach a precise source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Finding {
    /// A rule variable in the head, a negated atom, or a comparison is
    /// not bound by any positive body atom (range restriction).
    UnsafeVariable {
        /// Rule index.
        rule: usize,
        /// The unbound variable.
        variable: String,
    },
    /// A predicate sits on a dependency cycle through negation, so the
    /// program has no stratification.
    NegativeCycle {
        /// First rule index defining the predicate.
        rule: usize,
        /// The predicate on the negative cycle.
        predicate: String,
    },
    /// A predicate is used with two different arities.
    ArityConflict {
        /// Rule index of the conflicting use.
        rule: usize,
        /// Body literal index of the conflicting use; `None` when the
        /// conflict is in the rule head.
        literal: Option<usize>,
        /// The predicate.
        predicate: String,
        /// Arity established by the first use (or database schema).
        expected: usize,
        /// Arity of this use.
        found: usize,
    },
    /// A rule head (re)defines a relation that already exists in the
    /// input database, so derived and stored tuples are merged.
    ShadowedInput {
        /// First rule index defining the predicate.
        rule: usize,
        /// The shadowed relation name.
        predicate: String,
    },
    /// A rule can never fire: a positive body atom ranges over a
    /// predicate that is provably empty (an empty input relation, or an
    /// IDB predicate only derivable from itself).
    DeadRule {
        /// Rule index.
        rule: usize,
        /// The provably empty predicate the body depends on.
        empty_predicate: String,
    },
    /// A body atom references a relation that is neither defined by any
    /// rule nor present in the input database.
    UndefinedPredicate {
        /// Rule index.
        rule: usize,
        /// Body literal index of the reference.
        literal: usize,
        /// The undefined relation name.
        predicate: String,
    },
    /// A rule variable occurs exactly once (in a positive body atom):
    /// it constrains nothing and is likely a typo.
    SingletonVariable {
        /// Rule index.
        rule: usize,
        /// The singleton variable.
        variable: String,
    },
    /// The rule's comparisons are statically contradictory, so the rule
    /// can never derive a tuple.
    UnsatisfiableRule {
        /// Rule index.
        rule: usize,
        /// Human-readable reason (e.g. the conflicting bounds).
        detail: String,
    },
}

impl Finding {
    /// Whether the finding is a hard error (evaluation rejects the
    /// program) rather than a lint warning.
    pub fn is_error(&self) -> bool {
        matches!(
            self,
            Finding::UnsafeVariable { .. }
                | Finding::NegativeCycle { .. }
                | Finding::ArityConflict { .. }
        )
    }

    /// The index of the rule the finding concerns.
    pub fn rule(&self) -> usize {
        match self {
            Finding::UnsafeVariable { rule, .. }
            | Finding::NegativeCycle { rule, .. }
            | Finding::ArityConflict { rule, .. }
            | Finding::ShadowedInput { rule, .. }
            | Finding::DeadRule { rule, .. }
            | Finding::UndefinedPredicate { rule, .. }
            | Finding::SingletonVariable { rule, .. }
            | Finding::UnsatisfiableRule { rule, .. } => *rule,
        }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Finding::UnsafeVariable { variable, .. } => write!(
                f,
                "unsafe variable `{variable}`: not bound by any positive body atom"
            ),
            Finding::NegativeCycle { predicate, .. } => write!(
                f,
                "predicate `{predicate}` is on a cycle through negation; the program is not stratifiable"
            ),
            Finding::ArityConflict {
                predicate,
                expected,
                found,
                ..
            } => write!(
                f,
                "predicate `{predicate}` used with {found} argument(s), but its arity is {expected}"
            ),
            Finding::ShadowedInput { predicate, .. } => write!(
                f,
                "rule head redefines input relation `{predicate}`; derived tuples will be merged with stored ones"
            ),
            Finding::DeadRule { empty_predicate, .. } => write!(
                f,
                "rule can never fire: predicate `{empty_predicate}` is provably empty"
            ),
            Finding::UndefinedPredicate { predicate, .. } => write!(
                f,
                "relation `{predicate}` is neither defined by a rule nor present in the database"
            ),
            Finding::SingletonVariable { variable, .. } => write!(
                f,
                "variable `{variable}` occurs only once; use a distinct name per position or check for a typo"
            ),
            Finding::UnsatisfiableRule { detail, .. } => {
                write!(f, "rule condition is statically unsatisfiable: {detail}")
            }
        }
    }
}

/// Runs every analysis pass over `program`, collecting **all**
/// findings instead of stopping at the first.
///
/// When `db` is supplied the database-aware passes run too: arity
/// checks against relation schemas, shadowed-input detection,
/// undefined-relation detection, and emptiness of input relations for
/// dead-rule analysis. Findings are ordered by pass, then by rule.
pub fn analyze(program: &Program, db: Option<&Database>) -> Vec<Finding> {
    let mut out = Vec::new();
    safety_findings(program, &mut out);
    stratification_findings(program, &mut out);
    arity_findings(program, db, &mut out);
    shadow_findings(program, db, &mut out);
    reachability_findings(program, db, &mut out);
    singleton_findings(program, &mut out);
    unsat_findings(program, &mut out);
    out
}

/// Pass 1: every range-restriction violation (not just the first).
fn safety_findings(program: &Program, out: &mut Vec<Finding>) {
    for (idx, rule) in program.rules.iter().enumerate() {
        let bound: BTreeSet<&str> = rule
            .body
            .iter()
            .filter(|l| !l.is_negative())
            .flat_map(|l| l.atom().variables())
            .collect();
        let mut need: Vec<&str> = rule.head.variables().collect();
        for lit in rule.body.iter().filter(|l| l.is_negative()) {
            need.extend(lit.atom().variables());
        }
        for cmp in &rule.comparisons {
            need.extend(cmp.variables());
        }
        let mut reported: BTreeSet<&str> = BTreeSet::new();
        for v in need {
            if !bound.contains(v) && reported.insert(v) {
                out.push(Finding::UnsafeVariable {
                    rule: idx,
                    variable: v.to_owned(),
                });
            }
        }
    }
}

/// Pass 2: every predicate on a cycle through negation.
///
/// Builds the predicate dependency graph, computes its transitive
/// closure, and flags the strongly connected component of every
/// negative edge whose endpoints are mutually reachable.
fn stratification_findings(program: &Program, out: &mut Vec<Finding>) {
    let idb: Vec<&str> = program.idb_predicates().into_iter().collect();
    let index: BTreeMap<&str, usize> = idb.iter().enumerate().map(|(i, &p)| (p, i)).collect();
    let n = idb.len();

    let mut reach = vec![vec![false; n]; n];
    let mut neg_edges: Vec<(usize, usize)> = Vec::new();
    for rule in &program.rules {
        let h = index[rule.head.pred.as_str()];
        for lit in &rule.body {
            if let Some(&b) = index.get(lit.atom().pred.as_str()) {
                reach[h][b] = true;
                if lit.is_negative() {
                    neg_edges.push((h, b));
                }
            }
        }
    }
    // Warshall transitive closure; programs are small.
    for k in 0..n {
        for i in 0..n {
            if reach[i][k] {
                let via: Vec<usize> = (0..n).filter(|&j| reach[k][j]).collect();
                for j in via {
                    reach[i][j] = true;
                }
            }
        }
    }

    let mut flagged: BTreeSet<usize> = BTreeSet::new();
    for (h, b) in neg_edges {
        // The negative edge h -> b lies on a cycle iff b reaches back
        // to h; flag every member of their common component.
        if reach[b][h] {
            flagged.extend((0..n).filter(|&c| {
                (c == h || (reach[h][c] && reach[c][h])) && (c == b || (reach[b][c] && reach[c][b]))
            }));
        }
    }
    for c in flagged {
        let pred = idb[c];
        let rule = program
            .rules
            .iter()
            .position(|r| r.head.pred == pred)
            .expect("IDB predicate has a defining rule");
        out.push(Finding::NegativeCycle {
            rule,
            predicate: pred.to_owned(),
        });
    }
}

/// Pass 3: conflicting arities across all uses of each predicate.
///
/// The first use (or the database schema, when available) establishes
/// the expected arity; every later use with a different arity is
/// reported.
fn arity_findings(program: &Program, db: Option<&Database>, out: &mut Vec<Finding>) {
    let mut expected: BTreeMap<&str, usize> = BTreeMap::new();
    if let Some(db) = db {
        for rel in db.relations() {
            expected.insert(&rel.schema.name, rel.schema.attrs.len());
        }
    }
    for (idx, rule) in program.rules.iter().enumerate() {
        let head = (rule.head.pred.as_str(), rule.head.args.len(), None);
        let body = rule
            .body
            .iter()
            .enumerate()
            .map(|(li, lit)| (lit.atom().pred.as_str(), lit.atom().args.len(), Some(li)));
        for (pred, found, literal) in std::iter::once(head).chain(body) {
            match expected.get(pred) {
                Some(&want) if want != found => out.push(Finding::ArityConflict {
                    rule: idx,
                    literal,
                    predicate: pred.to_owned(),
                    expected: want,
                    found,
                }),
                Some(_) => {}
                None => {
                    expected.insert(pred, found);
                }
            }
        }
    }
}

/// Pass 4 (database-aware): rule heads shadowing input relations.
fn shadow_findings(program: &Program, db: Option<&Database>, out: &mut Vec<Finding>) {
    let Some(db) = db else { return };
    let mut seen: BTreeSet<&str> = BTreeSet::new();
    for (idx, rule) in program.rules.iter().enumerate() {
        let pred = rule.head.pred.as_str();
        if db.relation(pred).is_some() && seen.insert(pred) {
            out.push(Finding::ShadowedInput {
                rule: idx,
                predicate: pred.to_owned(),
            });
        }
    }
}

/// Pass 5: dead rules and undefined relations.
///
/// A predicate is *possibly nonempty* if it is an input relation with
/// tuples (assumed nonempty when no database is given), or an IDB
/// predicate with at least one rule whose positive body atoms all range
/// over possibly-nonempty predicates. A rule depending positively on a
/// predicate that is not possibly nonempty can never fire.
fn reachability_findings(program: &Program, db: Option<&Database>, out: &mut Vec<Finding>) {
    let idb = program.idb_predicates();
    // Undefined relations first (database-aware), so dead-rule
    // reporting can skip the causes already explained.
    let mut undefined: BTreeSet<&str> = BTreeSet::new();
    if let Some(db) = db {
        for (idx, rule) in program.rules.iter().enumerate() {
            for (li, lit) in rule.body.iter().enumerate() {
                let pred = lit.atom().pred.as_str();
                if !idb.contains(pred) && db.relation(pred).is_none() {
                    undefined.insert(pred);
                    out.push(Finding::UndefinedPredicate {
                        rule: idx,
                        literal: li,
                        predicate: pred.to_owned(),
                    });
                }
            }
        }
    }

    let mut nonempty: BTreeMap<&str, bool> = BTreeMap::new();
    for rule in &program.rules {
        for lit in &rule.body {
            let pred = lit.atom().pred.as_str();
            if !idb.contains(pred) {
                let base = match db {
                    Some(db) => db.relation(pred).is_some_and(|r| !r.is_empty()),
                    None => true,
                };
                nonempty.insert(pred, base);
            }
        }
    }
    for &pred in &idb {
        nonempty.insert(pred, false);
    }
    let mut changed = true;
    while changed {
        changed = false;
        for rule in &program.rules {
            if nonempty[rule.head.pred.as_str()] {
                continue;
            }
            let fires = rule
                .body
                .iter()
                .filter(|l| !l.is_negative())
                .all(|l| nonempty[l.atom().pred.as_str()]);
            if fires {
                nonempty.insert(&rule.head.pred, true);
                changed = true;
            }
        }
    }
    for (idx, rule) in program.rules.iter().enumerate() {
        let empty = rule
            .body
            .iter()
            .filter(|l| !l.is_negative())
            .map(|l| l.atom().pred.as_str())
            .find(|p| !nonempty[p] && !undefined.contains(p));
        if let Some(p) = empty {
            out.push(Finding::DeadRule {
                rule: idx,
                empty_predicate: p.to_owned(),
            });
        }
    }
}

/// Pass 6: singleton rule variables.
///
/// A variable whose only occurrence sits in a positive body atom binds
/// nothing and joins nothing — usually a typo for another variable.
/// Singletons elsewhere (head, negation, comparisons) are already
/// safety errors, so they are not re-reported here. Names starting
/// with `_` are treated as intentionally unused.
fn singleton_findings(program: &Program, out: &mut Vec<Finding>) {
    for (idx, rule) in program.rules.iter().enumerate() {
        // Count every textual occurrence, position by position.
        let mut count: BTreeMap<&str, usize> = BTreeMap::new();
        let atoms = std::iter::once(&rule.head).chain(rule.body.iter().map(Literal::atom));
        for atom in atoms {
            for v in atom.args.iter().filter_map(ArgTerm::as_var) {
                *count.entry(v).or_insert(0) += 1;
            }
        }
        for cmp in &rule.comparisons {
            for side in [&cmp.lhs, &cmp.rhs] {
                if let CompExpr::Arg(ArgTerm::Var(v)) = side {
                    *count.entry(v.as_str()).or_insert(0) += 1;
                }
            }
        }
        let positive: BTreeSet<&str> = rule
            .body
            .iter()
            .filter(|l| !l.is_negative())
            .flat_map(|l| l.atom().variables())
            .collect();
        for (v, n) in count {
            if n == 1 && positive.contains(v) && !v.starts_with('_') {
                out.push(Finding::SingletonVariable {
                    rule: idx,
                    variable: v.to_owned(),
                });
            }
        }
    }
}

/// Pass 7: statically unsatisfiable comparison conjunctions.
///
/// Two layers, mirroring the solver's own phase split:
///
/// 1. the comparisons are translated to a solver [`Condition`] over a
///    scratch c-variable registry and structurally simplified — this
///    folds ground comparisons (`1 > 2`) and trivial contradictions;
/// 2. interval reasoning over `var op constant` comparisons catches
///    open-domain contradictions the structural pass cannot see, such
///    as `x < 2, x > 5` or `$x = 1, $x != 1`.
fn unsat_findings(program: &Program, out: &mut Vec<Finding>) {
    for (idx, rule) in program.rules.iter().enumerate() {
        if rule.comparisons.is_empty() {
            continue;
        }
        if let Some(detail) = rule_unsat_reason(rule) {
            out.push(Finding::UnsatisfiableRule { rule: idx, detail });
        }
    }
}

/// Explains why a rule's comparisons are contradictory, if they are.
fn rule_unsat_reason(rule: &Rule) -> Option<String> {
    // Layer 1: translate to a solver condition and simplify.
    let mut reg = CVarRegistry::default();
    let mut ids: BTreeMap<String, CVarId> = BTreeMap::new();
    let mut id_for = |key: String, reg: &mut CVarRegistry| {
        *ids.entry(key.clone())
            .or_insert_with(|| reg.fresh(key, Domain::Open))
    };
    let side = |e: &CompExpr,
                reg: &mut CVarRegistry,
                id_for: &mut dyn FnMut(String, &mut CVarRegistry) -> CVarId| {
        match e {
            CompExpr::Arg(ArgTerm::Cst(c)) => Expr::Term(Term::Const(c.clone())),
            CompExpr::Arg(ArgTerm::Var(v)) => Expr::Term(Term::Var(id_for(v.clone(), reg))),
            CompExpr::Arg(ArgTerm::CVar(c)) => Expr::Term(Term::Var(id_for(format!("${c}"), reg))),
            CompExpr::Lin { terms, constant } => {
                let mut lin = LinExpr::constant(*constant);
                for (coef, name) in terms {
                    lin = lin.plus_var(*coef, id_for(format!("${name}"), reg));
                }
                Expr::Lin(lin)
            }
        }
    };
    let atoms: Vec<Condition> = rule
        .comparisons
        .iter()
        .map(|c| {
            Condition::Atom(Atom {
                lhs: side(&c.lhs, &mut reg, &mut id_for),
                op: c.op,
                rhs: side(&c.rhs, &mut reg, &mut id_for),
            })
        })
        .collect();
    if simplify(&Condition::conj(atoms)) == Condition::False {
        return Some("the comparisons simplify to false".to_owned());
    }

    // Layer 2: interval reasoning over `var op constant` comparisons.
    // Rule variables and c-variables are keyed by their display form.
    #[derive(Default)]
    struct Ranges {
        /// Tightest lower bound and the comparison that set it.
        lo: Option<(i64, Comparison)>,
        /// Tightest upper bound and the comparison that set it.
        hi: Option<(i64, Comparison)>,
        /// Required symbolic value, from an `=` with a non-integer.
        eq_sym: Option<(Const, Comparison)>,
        /// Excluded values.
        ne: Vec<(Const, Comparison)>,
    }
    fn tighten_lo(r: &mut Ranges, k: i64, by: &Comparison) {
        if r.lo.as_ref().is_none_or(|(cur, _)| k > *cur) {
            r.lo = Some((k, by.clone()));
        }
    }
    fn tighten_hi(r: &mut Ranges, k: i64, by: &Comparison) {
        if r.hi.as_ref().is_none_or(|(cur, _)| k < *cur) {
            r.hi = Some((k, by.clone()));
        }
    }
    let mut ranges: BTreeMap<String, Ranges> = BTreeMap::new();
    let var_key = |e: &CompExpr| -> Option<String> {
        match e {
            CompExpr::Arg(ArgTerm::Var(v)) => Some(v.clone()),
            CompExpr::Arg(ArgTerm::CVar(c)) => Some(format!("${c}")),
            _ => None,
        }
    };
    let cst = |e: &CompExpr| -> Option<Const> {
        match e {
            CompExpr::Arg(ArgTerm::Cst(c)) => Some(c.clone()),
            _ => None,
        }
    };
    for cmp in &rule.comparisons {
        // `x op x` is decided outright.
        if let (Some(a), Some(b)) = (var_key(&cmp.lhs), var_key(&cmp.rhs)) {
            if a == b && matches!(cmp.op, CmpOp::Ne | CmpOp::Lt | CmpOp::Gt) {
                return Some(format!("`{cmp}` compares a variable against itself"));
            }
            continue;
        }
        // Normalise to `var op constant`.
        let (key, op, value) = if let (Some(k), Some(c)) = (var_key(&cmp.lhs), cst(&cmp.rhs)) {
            (k, cmp.op, c)
        } else if let (Some(c), Some(k)) = (cst(&cmp.lhs), var_key(&cmp.rhs)) {
            (k, flip(cmp.op), c)
        } else {
            continue;
        };
        let r = ranges.entry(key).or_default();
        match (op, value.as_int()) {
            (CmpOp::Eq, Some(k)) => {
                // Equality is both bounds at once.
                tighten_lo(r, k, cmp);
                tighten_hi(r, k, cmp);
            }
            (CmpOp::Eq, None) => {
                if let Some((prev, by)) = &r.eq_sym {
                    if *prev != value {
                        return Some(format!("`{by}` conflicts with `{cmp}`"));
                    }
                } else {
                    r.eq_sym = Some((value, cmp.clone()));
                }
            }
            (CmpOp::Ne, _) => r.ne.push((value, cmp.clone())),
            (CmpOp::Lt, Some(k)) => tighten_hi(r, k - 1, cmp),
            (CmpOp::Le, Some(k)) => tighten_hi(r, k, cmp),
            (CmpOp::Gt, Some(k)) => tighten_lo(r, k + 1, cmp),
            (CmpOp::Ge, Some(k)) => tighten_lo(r, k, cmp),
            // Ordering against a non-integer can never hold.
            (_, None) => return Some(format!("`{cmp}` orders against a non-integer")),
        }
    }
    for r in ranges.values() {
        if let (Some((lo, by_lo)), Some((hi, by_hi))) = (&r.lo, &r.hi) {
            if lo > hi {
                return Some(format!("`{by_lo}` conflicts with `{by_hi}`"));
            }
            // A one-point integer range may still be excluded.
            if lo == hi {
                if let Some((_, by_ne)) = r.ne.iter().find(|(c, _)| c.as_int() == Some(*lo)) {
                    return Some(format!("`{by_lo}` conflicts with `{by_ne}`"));
                }
            }
        }
        if let Some((sym, by_eq)) = &r.eq_sym {
            if let Some((_, by)) = r.lo.as_ref().or(r.hi.as_ref()) {
                return Some(format!("`{by_eq}` conflicts with `{by}`"));
            }
            if let Some((_, by_ne)) = r.ne.iter().find(|(c, _)| c == sym) {
                return Some(format!("`{by_eq}` conflicts with `{by_ne}`"));
            }
        }
    }
    None
}

/// Mirrors a comparison operator (for `const op var` normalisation).
fn flip(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Eq => CmpOp::Eq,
        CmpOp::Ne => CmpOp::Ne,
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_program, parse_rule};

    #[test]
    fn safe_rule_passes() {
        let r = parse_rule("R(f, n1, n2) :- F(f, n1, n3), R(f, n3, n2).").unwrap();
        assert!(check_rule_safety(&r).is_ok());
    }

    #[test]
    fn unbound_head_variable_rejected() {
        let r = parse_rule("R(a, b) :- F(a).").unwrap();
        assert!(matches!(
            check_rule_safety(&r),
            Err(AnalysisError::UnsafeVariable { variable, .. }) if variable == "b"
        ));
    }

    #[test]
    fn negated_only_variable_rejected() {
        let r = parse_rule("R(a) :- F(a), !G(b).").unwrap();
        assert!(check_rule_safety(&r).is_err());
    }

    #[test]
    fn comparison_only_variable_rejected() {
        let r = parse_rule("R(a) :- F(a), b < 3.").unwrap();
        assert!(check_rule_safety(&r).is_err());
    }

    #[test]
    fn cvars_do_not_need_binding() {
        // C-variables are c-domain symbols, not rule variables; they
        // may appear anywhere (e.g. Listing 3's variable-free rules).
        let r = parse_rule("Vt($x, CS, $p) :- R($x, CS, $p), $x != Mkt.").unwrap();
        assert!(check_rule_safety(&r).is_ok());
    }

    #[test]
    fn facts_are_safe() {
        let r = parse_rule("Lb(Mkt, CS).").unwrap();
        assert!(check_rule_safety(&r).is_ok());
    }

    #[test]
    fn stratifies_negation_free_program_into_one_stratum() {
        let p = parse_program(
            "R(a, b) :- F(a, b).\n\
             R(a, b) :- F(a, c), R(c, b).\n",
        )
        .unwrap();
        let s = stratify(&p).unwrap();
        assert_eq!(s.strata.len(), 1);
        assert_eq!(s.strata[0], vec![0, 1]);
    }

    #[test]
    fn negation_creates_second_stratum() {
        let p = parse_program(
            "R(a, b) :- F(a, b).\n\
             Bad(a) :- N(a), !R(a, a).\n",
        )
        .unwrap();
        let s = stratify(&p).unwrap();
        assert_eq!(s.pred_stratum["R"], 0);
        assert_eq!(s.pred_stratum["Bad"], 1);
        assert_eq!(s.strata.len(), 2);
    }

    #[test]
    fn negative_cycle_rejected() {
        let p = parse_program(
            "P(a) :- N(a), !Q(a).\n\
             Q(a) :- N(a), !P(a).\n",
        )
        .unwrap();
        assert!(matches!(
            stratify(&p),
            Err(AnalysisError::NotStratifiable { .. })
        ));
    }

    #[test]
    fn positive_cycle_fine() {
        let p = parse_program(
            "P(a) :- Q(a).\n\
             Q(a) :- P(a).\n\
             Q(a) :- N(a).\n",
        )
        .unwrap();
        let s = stratify(&p).unwrap();
        assert_eq!(s.strata.len(), 1);
    }

    #[test]
    fn analyze_collects_every_unsafe_variable() {
        let p = parse_program("R(a, b, c) :- F(a).\nS(x) :- G(x), y < 3.\n").unwrap();
        let findings = analyze(&p, None);
        let unsafe_vars: Vec<(usize, &str)> = findings
            .iter()
            .filter_map(|f| match f {
                Finding::UnsafeVariable { rule, variable } => Some((*rule, variable.as_str())),
                _ => None,
            })
            .collect();
        assert_eq!(unsafe_vars, vec![(0, "b"), (0, "c"), (1, "y")]);
    }

    #[test]
    fn analyze_flags_every_predicate_on_negative_cycle() {
        let p = parse_program(
            "P(a) :- N(a), !Q(a).\n\
             Q(a) :- N(a), !P(a).\n\
             Ok(a) :- N(a).\n",
        )
        .unwrap();
        let findings = analyze(&p, None);
        let preds: Vec<&str> = findings
            .iter()
            .filter_map(|f| match f {
                Finding::NegativeCycle { predicate, .. } => Some(predicate.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(preds, vec!["P", "Q"]);
    }

    #[test]
    fn analyze_reports_arity_conflicts() {
        let p = parse_program("R(a, b) :- F(a, b).\nS(a) :- F(a), R(a).\n").unwrap();
        let findings = analyze(&p, None);
        let conflicts: Vec<_> = findings
            .iter()
            .filter(|f| matches!(f, Finding::ArityConflict { .. }))
            .collect();
        assert_eq!(conflicts.len(), 2, "{findings:?}");
        assert!(matches!(
            conflicts[0],
            Finding::ArityConflict {
                rule: 1,
                literal: Some(0),
                expected: 2,
                found: 1,
                ..
            }
        ));
        assert!(matches!(
            conflicts[1],
            Finding::ArityConflict {
                rule: 1,
                literal: Some(1),
                expected: 2,
                found: 1,
                ..
            }
        ));
    }

    #[test]
    fn analyze_flags_shadowed_input_relations() {
        let mut db = faure_ctable::Database::new();
        db.create_relation(faure_ctable::Schema::new("R", &["a"]))
            .unwrap();
        let p = parse_program("R(a) :- F(a).\n").unwrap();
        let findings = analyze(&p, Some(&db));
        assert!(findings.iter().any(
            |f| matches!(f, Finding::ShadowedInput { rule: 0, predicate } if predicate == "R")
        ));
    }

    #[test]
    fn analyze_detects_dead_rules_and_undefined_predicates() {
        // Self-recursive P has no base case: dead without any database.
        let p = parse_program("P(a) :- P(a).\n").unwrap();
        assert!(analyze(&p, None)
            .iter()
            .any(|f| matches!(f, Finding::DeadRule { rule: 0, .. })));

        // With a database: G is undefined, F is present but empty.
        let mut db = faure_ctable::Database::new();
        db.create_relation(faure_ctable::Schema::new("F", &["a"]))
            .unwrap();
        let p = parse_program("R(a) :- G(a).\nS(a) :- F(a).\n").unwrap();
        let findings = analyze(&p, Some(&db));
        assert!(findings.iter().any(|f| matches!(
            f,
            Finding::UndefinedPredicate { rule: 0, literal: 0, predicate } if predicate == "G"
        )));
        // Rule 0's dead-ness is explained by the undefined predicate, so
        // only rule 1 (empty F) gets a dead-rule finding.
        let dead: Vec<usize> = findings
            .iter()
            .filter_map(|f| match f {
                Finding::DeadRule { rule, .. } => Some(*rule),
                _ => None,
            })
            .collect();
        assert_eq!(dead, vec![1]);
    }

    #[test]
    fn analyze_flags_singleton_variables() {
        let p = parse_program("R(a) :- F(a, b).\nS(a) :- G(a, _ignore).\n").unwrap();
        let findings = analyze(&p, None);
        assert!(findings.iter().any(
            |f| matches!(f, Finding::SingletonVariable { rule: 0, variable } if variable == "b")
        ));
        // `_`-prefixed names are intentionally unused; shared variables
        // are not singletons.
        assert_eq!(
            findings
                .iter()
                .filter(|f| matches!(f, Finding::SingletonVariable { .. }))
                .count(),
            1
        );
    }

    #[test]
    fn analyze_detects_unsatisfiable_intervals() {
        let p = parse_program("R(a) :- F(a), a < 2, a > 5.\n").unwrap();
        let findings = analyze(&p, None);
        assert!(
            findings
                .iter()
                .any(|f| matches!(f, Finding::UnsatisfiableRule { rule: 0, .. })),
            "{findings:?}"
        );
    }

    #[test]
    fn analyze_detects_eq_ne_contradiction_on_cvars() {
        let p = parse_program("R($x) :- F($x), $x = 1, $x != 1.\n").unwrap();
        assert!(analyze(&p, None)
            .iter()
            .any(|f| matches!(f, Finding::UnsatisfiableRule { .. })));
    }

    #[test]
    fn analyze_detects_ground_false_comparison() {
        let p = parse_program("R(a) :- F(a), 1 > 2.\n").unwrap();
        let findings = analyze(&p, None);
        assert!(findings.iter().any(|f| matches!(
            f,
            Finding::UnsatisfiableRule { detail, .. } if detail.contains("simplify")
        )));
    }

    #[test]
    fn analyze_accepts_satisfiable_conditions() {
        let p = parse_program("R(a) :- F(a), a >= 2, a <= 2, a != 3.\n").unwrap();
        assert!(analyze(&p, None)
            .iter()
            .all(|f| !matches!(f, Finding::UnsatisfiableRule { .. })));
    }

    #[test]
    fn analyze_clean_program_has_no_findings() {
        let p = parse_program(
            "R(f, n1, n2) :- F(f, n1, n2).\n\
             R(f, n1, n2) :- F(f, n1, n3), R(f, n3, n2).\n",
        )
        .unwrap();
        assert_eq!(analyze(&p, None), Vec::new());
    }

    #[test]
    fn multi_level_strata() {
        let p = parse_program(
            "A(x) :- E(x).\n\
             B(x) :- E(x), !A(x).\n\
             C(x) :- E(x), !B(x).\n",
        )
        .unwrap();
        let s = stratify(&p).unwrap();
        assert_eq!(s.pred_stratum["A"], 0);
        assert_eq!(s.pred_stratum["B"], 1);
        assert_eq!(s.pred_stratum["C"], 2);
    }
}
