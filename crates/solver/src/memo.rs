//! Shared, lock-sharded solver memo for parallel evaluation.
//!
//! A [`crate::Session`] memoises satisfiability and simplification
//! results keyed by the (canonical) condition. Under parallel fixpoint
//! evaluation each worker thread runs its own session; without sharing,
//! every worker would re-solve the conditions its siblings already
//! decided and the ~87 % memo hit rate the fixpoint relies on would
//! fall with the thread count. [`SharedMemo`] is the shared backing
//! store: a fixed set of mutex-protected shards, each holding a slice
//! of the condition space selected by hash.
//!
//! Sharding keeps contention low (two workers only collide when their
//! conditions hash to the same shard) while staying dependency-free —
//! plain `std::sync::Mutex`, no lock-free machinery.
//!
//! ## Soundness under races
//!
//! The memo caches *ground truth*: `satisfiable` and `simplify_pruned`
//! are deterministic functions of the condition (given the append-only
//! registry of the run). If two workers race on the same uncached
//! condition, both compute the same answer and the second `put` is a
//! no-op overwrite — results never depend on interleaving, only the
//! hit/miss statistics do. Like the per-session memo, a `SharedMemo`
//! must not be reused across distinct c-variable registries.

use faure_ctable::Condition;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Mutex;

/// Number of independently locked shards. A small power of two is
/// plenty: with the engine's worker counts (single digits) the
/// collision probability per access is `workers / SHARDS`.
const SHARDS: usize = 16;

/// Upper bound on entries per shard per kind, so the whole memo stays
/// within the same budget as a local session memo
/// (`MEMO_CAP = 1 << 16` entries total per kind).
const SHARD_CAP: usize = super::session::MEMO_CAP / SHARDS;

/// A satisfiability/simplification memo shareable across worker
/// sessions (see module docs).
#[derive(Debug, Default)]
pub struct SharedMemo {
    sat: Vec<Mutex<HashMap<Condition, bool>>>,
    simplify: Vec<Mutex<HashMap<Condition, Condition>>>,
}

impl SharedMemo {
    /// An empty memo.
    pub fn new() -> Self {
        SharedMemo {
            sat: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            simplify: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
        }
    }

    fn shard(cond: &Condition) -> usize {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        cond.hash(&mut h);
        (h.finish() as usize) % SHARDS
    }

    /// Cached satisfiability verdict for `cond`, if any.
    pub fn sat_get(&self, cond: &Condition) -> Option<bool> {
        self.sat[Self::shard(cond)]
            .lock()
            .expect("memo shard poisoned")
            .get(cond)
            .copied()
    }

    /// Caches a satisfiability verdict (dropped once the shard is at
    /// capacity, bounding memory on adversarial workloads).
    pub fn sat_put(&self, cond: &Condition, sat: bool) {
        let mut shard = self.sat[Self::shard(cond)]
            .lock()
            .expect("memo shard poisoned");
        if shard.len() < SHARD_CAP || shard.contains_key(cond) {
            shard.insert(cond.clone(), sat);
        }
    }

    /// Cached simplification of `cond`, if any.
    pub fn simplify_get(&self, cond: &Condition) -> Option<Condition> {
        self.simplify[Self::shard(cond)]
            .lock()
            .expect("memo shard poisoned")
            .get(cond)
            .cloned()
    }

    /// Caches a simplification result (capacity-bounded like
    /// [`sat_put`](SharedMemo::sat_put)).
    pub fn simplify_put(&self, cond: &Condition, simplified: &Condition) {
        let mut shard = self.simplify[Self::shard(cond)]
            .lock()
            .expect("memo shard poisoned");
        if shard.len() < SHARD_CAP || shard.contains_key(cond) {
            shard.insert(cond.clone(), simplified.clone());
        }
    }

    /// Total cached entries (both kinds), for diagnostics.
    pub fn len(&self) -> usize {
        self.sat
            .iter()
            .map(|s| s.lock().expect("memo shard poisoned").len())
            .sum::<usize>()
            + self
                .simplify
                .iter()
                .map(|s| s.lock().expect("memo shard poisoned").len())
                .sum::<usize>()
    }

    /// Whether no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faure_ctable::Term;
    use std::sync::Arc;

    #[test]
    fn put_get_round_trip() {
        let memo = SharedMemo::new();
        let c = Condition::eq(Term::int(1), Term::int(1));
        assert_eq!(memo.sat_get(&c), None);
        memo.sat_put(&c, true);
        assert_eq!(memo.sat_get(&c), Some(true));
        let s = Condition::eq(Term::int(1), Term::int(2));
        memo.simplify_put(&s, &Condition::False);
        assert_eq!(memo.simplify_get(&s), Some(Condition::False));
        assert_eq!(memo.len(), 2);
    }

    #[test]
    fn concurrent_access_is_consistent() {
        let memo = Arc::new(SharedMemo::new());
        let conds: Vec<Condition> = (0..64)
            .map(|i| Condition::eq(Term::int(i), Term::int(i % 3)))
            .collect();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let memo = Arc::clone(&memo);
                let conds = &conds;
                s.spawn(move || {
                    for c in conds {
                        memo.sat_put(c, true);
                        assert_eq!(memo.sat_get(c), Some(true));
                    }
                });
            }
        });
        assert_eq!(memo.len(), 64);
    }
}
