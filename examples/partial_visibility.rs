//! Inter-domain analysis with limited visibility (paper §1's second
//! motivation).
//!
//! "In the global Internet, the inability to obtain the BGP
//! configuration inputs from external domains leaves most attempts to
//! verify the global routing behavior futile … it is desirable to
//! implement some (perhaps weaker) verification than stop working
//! entirely."
//!
//! Our domain (AS 1) is fully known; the transit providers AS 2 and
//! AS 3 are opaque — each forwards to exactly one of its neighbours,
//! but which one is their private policy. Fauré answers reachability
//! questions anyway: *definitely*, *conditionally* (with the exact
//! condition on the opaque choices), or *definitely not* — and
//! sharpens the answers as policy knowledge arrives.
//!
//! Run with: `cargo run -p faure-examples --bin partial_visibility`

use faure_net::interdomain::{can_reach, Answer, Internet};

fn describe(answer: &Answer, reg: &faure_ctable::CVarRegistry) -> String {
    match answer {
        Answer::Definite => "YES, whatever the opaque domains decide".to_owned(),
        Answer::Conditional(c) => format!("only if {}", c.display(reg)),
        Answer::No => "NO, under every possible behaviour".to_owned(),
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // AS 1 (ours) multihomes through transits 2 and 3. Transit 2
    // forwards to 4 or 5 (unknown which); transit 3 is known to
    // forward to 4. ASes 4 and 5 reach the destination 9; AS 8 is a
    // dead end.
    println!("scenario A: no policy knowledge about the transits");
    let a = Internet::new()
        .known(1, &[2, 3])
        .opaque(2, &[4, 5])
        .opaque(3, &[4, 8])
        .known(4, &[9])
        .known(5, &[9])
        .build();
    for (src, dst) in [(1, 9), (3, 9), (1, 8), (9, 1)] {
        let ans = can_reach(&a, src, dst)?;
        println!(
            "  can AS{src} reach AS{dst}?  {}",
            describe(&ans, &a.db.cvars)
        );
    }

    // Policy knowledge arrives: AS 3 never routes through AS 8 (it is
    // a stub customer, say). The conditional answer sharpens.
    println!("\nscenario B: we learn that AS3 never forwards via AS8");
    let b = Internet::new()
        .known(1, &[2, 3])
        .opaque(2, &[4, 5])
        .opaque(3, &[4, 8])
        .exclude(3, 8)
        .known(4, &[9])
        .known(5, &[9])
        .build();
    for (src, dst) in [(3, 9), (1, 9)] {
        let ans = can_reach(&b, src, dst)?;
        println!(
            "  can AS{src} reach AS{dst}?  {}",
            describe(&ans, &b.db.cvars)
        );
    }

    println!(
        "\nThis is loss-less modeling at work: the c-table commits to \
         nothing the operator does not know, yet every query above is \
         answered as precisely as the available knowledge permits."
    );
    Ok(())
}
