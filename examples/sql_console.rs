//! Interactive SQL console over c-tables (paper §3's SQL extension).
//!
//! Loads a demo database (Table 2's PATH′ by default, or the §5
//! enterprise network with `--net`) and evaluates SELECT statements
//! read from stdin. Conditional rows print with their conditions —
//! watch a constant `WHERE` clause match an unknown cell:
//!
//! ```text
//! sql> SELECT dest, path FROM P WHERE dest = '1.2.3.5'
//!   (1.2.3.5, [A,B,E]) [(y' != 1.2.3.4 & y' = 1.2.3.5)]
//! ```
//!
//! Run with: `cargo run -p faure-examples --bin sql_console [--net]`
//! (pipe queries in, or type them followed by Enter; Ctrl-D exits).

use faure_storage::sql;
use std::io::{BufRead, Write};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let use_net = std::env::args().any(|a| a == "--net");
    let db = if use_net {
        let (db, _) = faure_net::enterprise::compliant_net();
        println!("loaded the §5 enterprise network: tables R, Lb, Fw");
        db
    } else {
        let (db, _) = faure_ctable::examples::table2_path_db();
        println!("loaded Table 2's PATH' database: tables P (c-table), C");
        db
    };
    print!("{db}");
    println!("type SELECT statements; Ctrl-D to exit.\n");

    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    loop {
        print!("sql> ");
        out.flush()?;
        let mut line = String::new();
        if stdin.lock().read_line(&mut line)? == 0 {
            println!();
            return Ok(());
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line.eq_ignore_ascii_case("quit") || line.eq_ignore_ascii_case("exit") {
            return Ok(());
        }
        match sql::query(&db, line) {
            Ok(table) => {
                if table.is_empty() {
                    println!("  (no rows)");
                }
                for row in table.iter() {
                    println!("  {}", row.display(&db.cvars));
                }
            }
            Err(e) => println!("  error: {e}"),
        }
    }
}
