//! Constraint subsumption via reduction to fauré-log evaluation.
//!
//! §5 of the paper observes that once constraints are 0-ary `panic`
//! queries, "constraint subsumption becomes a special case of program
//! containment", and — instead of running a containment decision
//! procedure — reduces containment to **query evaluation in fauré-log**:
//!
//! 1. rewrite each `panic` rule of the *target* constraint into a
//!    **variable-free** form: every rule variable is replaced by a
//!    fresh c-variable (c-variables are "unknown constants", so this is
//!    exactly the paper's "substitute the variables with c-variables
//!    augmented with proper conditions");
//! 2. **freeze** the rule's positive body into a canonical database
//!    (one unconditional tuple per positive literal). Predicates that
//!    occur under negation — in the target rule or anywhere in the
//!    candidates — additionally receive one **generic adversarial
//!    tuple** of fresh c-variables whose condition excludes exactly the
//!    tuples the target rule's own negated literals forbid. This is the
//!    paper's `Fw(x̄,ȳ)` construction (§5; the paper's rendering drops
//!    the negation on the condition — the instance must contain
//!    *anything but* `(Mkt, CS)`);
//! 3. **evaluate** the candidate (subsuming) constraints on that
//!    canonical database;
//! 4. the rule is covered if the candidates derive `panic` under a
//!    condition entailed by the rule's own comparisons (checked with
//!    the solver; the frozen and adversarial c-variables are implicitly
//!    universally quantified, which is the correct polarity — the
//!    adversary picks the unknown values and the unconstrained rows).
//!
//! The target is subsumed if *every* rule is covered. The test is
//! sound for the paper's constraint class (non-recursive rules whose
//! negated literals mention tuples determined by the positive body, one
//! adversarial row per negated predicate suffices) and, like the
//! paper's category-(i) verifier, *relative*-complete — on `NotShown`
//! the caller needs more information (category (ii), or direct
//! checking).
//!
//! Note on style: in this engine, "match any row including c-variable
//! cells" is expressed with plain rule variables (the c-valuation binds
//! them to c-domain terms directly), so constraints are written
//! `panic :- R(Mkt, CS, p), !Fw(Mkt, CS).` — the paper's `p̄` becomes
//! the rule variable `p`, which the freeze step replaces with a fresh
//! c-variable, landing on exactly the paper's variable-free form.
//!
//! Aux predicates in constraint programs (like Listing 3's `Vt`) are
//! handled by unfolding `panic` rules down to EDB level first; since
//! constraints are non-recursive this always terminates (recursion is
//! reported as [`ContainmentError::RecursiveConstraint`]).

use crate::ast::{ArgTerm, CompExpr, Comparison, Literal, Program, Rule, RuleAtom};
use crate::eval::{evaluate_with, EvalError, EvalOptions};
use faure_ctable::{CTuple, CVarRegistry, CmpOp, Condition, Database, Domain, Schema, Term};
use faure_solver::SolverError;
use std::collections::{BTreeSet, HashMap};
use std::fmt;

/// Outcome of the subsumption test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Subsumption {
    /// Every violation of the target implies a violation of the
    /// candidates: target is subsumed (category-(i) success).
    Subsumed,
    /// The test could not establish subsumption. The contained rule
    /// index is the first uncovered `panic` rule (after unfolding).
    NotShown {
        /// Index (in unfolded order) of the first uncovered rule.
        uncovered_rule: usize,
    },
}

/// Errors of the containment machinery.
#[derive(Debug)]
pub enum ContainmentError {
    /// The target constraint defines a predicate recursively; the
    /// reduction requires non-recursive constraint programs.
    RecursiveConstraint(String),
    /// The target has no `panic` rules.
    NoGoal,
    /// Evaluation of the candidate program failed.
    Eval(EvalError),
    /// A solver failure during the entailment check.
    Solver(SolverError),
}

impl fmt::Display for ContainmentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ContainmentError::RecursiveConstraint(p) => {
                write!(f, "constraint predicate `{p}` is recursive; cannot unfold")
            }
            ContainmentError::NoGoal => write!(f, "target constraint has no `panic` rule"),
            ContainmentError::Eval(e) => write!(f, "{e}"),
            ContainmentError::Solver(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ContainmentError {}

impl From<EvalError> for ContainmentError {
    fn from(e: EvalError) -> Self {
        ContainmentError::Eval(e)
    }
}

impl From<SolverError> for ContainmentError {
    fn from(e: SolverError) -> Self {
        ContainmentError::Solver(e)
    }
}

/// The 0-ary goal predicate of constraint programs.
pub const GOAL: &str = "panic";

/// Tests whether `target ⊆ candidates` (violation of target implies
/// violation of candidates), i.e. whether the candidate constraints
/// **subsume** the target.
///
/// `reg` supplies domains for named c-variables occurring in the
/// programs (e.g. the port domain of `$p`); unknown names are treated
/// as open.
pub fn subsumes(
    candidates: &Program,
    target: &Program,
    reg: &CVarRegistry,
) -> Result<Subsumption, ContainmentError> {
    let unfolded = unfold_goal_rules(target)?;
    if unfolded.is_empty() {
        return Err(ContainmentError::NoGoal);
    }
    for (i, rule) in unfolded.iter().enumerate() {
        if !rule_covered(candidates, rule, reg)? {
            return Ok(Subsumption::NotShown { uncovered_rule: i });
        }
    }
    Ok(Subsumption::Subsumed)
}

/// Step 1+2+3+4 for one unfolded, EDB-level `panic` rule.
fn rule_covered(
    candidates: &Program,
    rule: &Rule,
    reg: &CVarRegistry,
) -> Result<bool, ContainmentError> {
    // Fresh database whose registry contains: all named c-variables of
    // both programs (with their domains from `reg` if registered), plus
    // one fresh c-variable per rule variable.
    let mut db = Database::new();
    let mut names: BTreeSet<&str> = candidates.cvar_names();
    names.extend(rule_cvar_names(rule));
    for name in names {
        let domain = reg
            .by_name(name)
            .map(|id| reg.domain(id).clone())
            .unwrap_or(Domain::Open);
        db.fresh_cvar(name, domain);
    }
    // Rule variables freeze to fresh c-variables. When the registry
    // holds a same-named c-variable (the §5 convention: `x̄, ȳ, p̄` name
    // the subnet/server/port attribute domains), the frozen variable
    // inherits that domain — this is what lets the test conclude, e.g.,
    // `ȳ ≠ GS ⟹ ȳ = CS` over the server domain {CS, GS}.
    let mut var_map: HashMap<&str, Term> = HashMap::new();
    for v in rule.variables() {
        let domain = reg
            .by_name(v)
            .map(|id| reg.domain(id).clone())
            .unwrap_or(Domain::Open);
        let id = db.fresh_cvar(format!("frz_{v}"), domain);
        var_map.insert(v, Term::Var(id));
    }

    // Freeze the positive body into the canonical database.
    let ensure_relation = |db: &mut Database, pred: &str, arity: usize| {
        if db.relation(pred).is_none() {
            let attrs: Vec<String> = (0..arity).map(|i| format!("c{i}")).collect();
            db.create_relation(Schema {
                name: pred.to_owned(),
                attrs,
            })
            .expect("fresh database");
        }
    };
    for lit in &rule.body {
        let atom = lit.atom();
        ensure_relation(&mut db, &atom.pred, atom.args.len());
        if lit.is_negative() {
            continue; // handled by the adversarial construction below
        }
        let terms: Vec<Term> = atom
            .args
            .iter()
            .map(|a| freeze_arg(a, &db.cvars, &var_map))
            .collect();
        db.insert(&atom.pred, CTuple::new(terms))
            .expect("schema created above");
    }

    // Adversarial rows: every predicate negated in the target rule or
    // anywhere in the candidates gets one generic tuple of fresh
    // c-variables, excluding exactly the tuples the target rule's own
    // negated literals forbid.
    let mut negated: HashMap<&str, usize> = HashMap::new();
    for lit in rule.body.iter().filter(|l| l.is_negative()) {
        negated.insert(lit.atom().pred.as_str(), lit.atom().args.len());
    }
    for cand in &candidates.rules {
        for lit in cand.body.iter().filter(|l| l.is_negative()) {
            negated
                .entry(lit.atom().pred.as_str())
                .or_insert(lit.atom().args.len());
        }
    }
    for (pred, arity) in negated {
        ensure_relation(&mut db, pred, arity);
        let generic: Vec<Term> = (0..arity)
            .map(|i| Term::Var(db.fresh_cvar(format!("adv_{pred}_{i}"), Domain::Open)))
            .collect();
        let mut exclusion = Condition::True;
        for lit in rule
            .body
            .iter()
            .filter(|l| l.is_negative() && l.atom().pred == pred)
        {
            let forbidden: Vec<Term> = lit
                .atom()
                .args
                .iter()
                .map(|a| freeze_arg(a, &db.cvars, &var_map))
                .collect();
            let equal = Condition::all(
                generic
                    .iter()
                    .zip(&forbidden)
                    .map(|(g, u)| Condition::eq(g.clone(), u.clone())),
            );
            exclusion = exclusion.and(equal.negate());
        }
        db.insert(pred, CTuple::with_cond(generic, exclusion))
            .expect("schema created above");
    }

    // The rule's own firing condition: its comparisons.
    let mut rule_cond = Condition::True;
    for cmp in &rule.comparisons {
        rule_cond = rule_cond.and(comparison_to_condition(cmp, &db.cvars, &var_map));
    }
    // If the rule can never fire, it is trivially covered.
    if !faure_solver::satisfiable(&db.cvars, &rule_cond)? {
        return Ok(true);
    }

    // Evaluate the candidates on the canonical database. `Never` prune:
    // we reason about the disjunction of raw panic conditions below.
    // The oracle run is auxiliary — suppress telemetry publication so
    // containment checks don't count as pipeline evaluations.
    let out = crate::engine::without_telemetry(|| {
        evaluate_with(
            candidates,
            &db,
            &EvalOptions {
                prune: crate::eval::PrunePolicy::Never,
                ..Default::default()
            },
        )
    })?;
    let Some(panic_rel) = out.relation(GOAL) else {
        return Ok(false);
    };
    if panic_rel.is_empty() {
        return Ok(false);
    }
    let derived = Condition::any(panic_rel.iter().map(|t| t.cond.clone()));
    Ok(faure_solver::implies(
        &out.database.cvars,
        &rule_cond,
        &derived,
    )?)
}

fn freeze_arg(arg: &ArgTerm, reg: &CVarRegistry, var_map: &HashMap<&str, Term>) -> Term {
    match arg {
        ArgTerm::Cst(c) => Term::Const(c.clone()),
        ArgTerm::CVar(name) => Term::Var(reg.by_name(name).expect("registered above")),
        ArgTerm::Var(v) => var_map[v.as_str()].clone(),
    }
}

fn comparison_to_condition(
    cmp: &Comparison,
    reg: &CVarRegistry,
    var_map: &HashMap<&str, Term>,
) -> Condition {
    let side = |e: &CompExpr| -> faure_ctable::Expr {
        match e {
            CompExpr::Arg(a) => faure_ctable::Expr::Term(freeze_arg(a, reg, var_map)),
            CompExpr::Lin { terms, constant } => {
                let mut lin = faure_ctable::LinExpr::constant(*constant);
                for (coef, name) in terms {
                    lin = lin.plus_var(*coef, reg.by_name(name).expect("registered above"));
                }
                faure_ctable::Expr::Lin(lin)
            }
        }
    };
    Condition::Atom(faure_ctable::Atom {
        lhs: side(&cmp.lhs),
        op: cmp.op,
        rhs: side(&cmp.rhs),
    })
}

fn rule_cvar_names(rule: &Rule) -> BTreeSet<&str> {
    let mut p = Program::new();
    p.rules.push(rule.clone());
    // Collect names via Program, but the borrow must come from `rule`:
    // re-walk directly instead.
    drop(p);
    let mut out = BTreeSet::new();
    for atom in std::iter::once(&rule.head).chain(rule.body.iter().map(Literal::atom)) {
        for a in &atom.args {
            if let ArgTerm::CVar(n) = a {
                out.insert(n.as_str());
            }
        }
    }
    for c in &rule.comparisons {
        for side in [&c.lhs, &c.rhs] {
            match side {
                CompExpr::Arg(ArgTerm::CVar(n)) => {
                    out.insert(n.as_str());
                }
                CompExpr::Lin { terms, .. } => out.extend(terms.iter().map(|(_, n)| n.as_str())),
                _ => {}
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// unfolding
// ---------------------------------------------------------------------------

/// Unfolds the target's `panic` rules down to EDB level, resolving aux
/// predicates (like Listing 3's `Vt`/`Vs`) through their definitions.
pub fn unfold_goal_rules(program: &Program) -> Result<Vec<Rule>, ContainmentError> {
    let idb: BTreeSet<&str> = program.idb_predicates();
    let mut result = Vec::new();
    for rule in program.rules.iter().filter(|r| r.head.pred == GOAL) {
        unfold_rule(rule, program, &idb, 0, &mut result)?;
    }
    Ok(result)
}

fn unfold_rule(
    rule: &Rule,
    program: &Program,
    idb: &BTreeSet<&str>,
    depth: usize,
    out: &mut Vec<Rule>,
) -> Result<(), ContainmentError> {
    if depth > program.rules.len() + 4 {
        // More unfolding steps than rules: a cycle.
        return Err(ContainmentError::RecursiveConstraint(
            rule.head.pred.clone(),
        ));
    }
    // Find the first positive IDB literal (other than the goal itself).
    let target_pos = rule.body.iter().position(|l| {
        !l.is_negative() && idb.contains(l.atom().pred.as_str()) && l.atom().pred != GOAL
    });
    let Some(pos) = target_pos else {
        // Negative IDB literals cannot be unfolded soundly; reject.
        if let Some(neg) = rule
            .body
            .iter()
            .find(|l| l.is_negative() && idb.contains(l.atom().pred.as_str()))
        {
            return Err(ContainmentError::RecursiveConstraint(
                neg.atom().pred.clone(),
            ));
        }
        out.push(rule.clone());
        return Ok(());
    };
    let call = rule.body[pos].atom().clone();
    for (def_idx, def) in program
        .rules
        .iter()
        .enumerate()
        .filter(|(_, r)| r.head.pred == call.pred)
    {
        if let Some(unfolded) = resolve_call(rule, pos, &call, def, def_idx) {
            unfold_rule(&unfolded, program, idb, depth + 1, out)?;
        }
    }
    Ok(())
}

/// Resolves `call` (at body position `pos` of `rule`) against the
/// definition `def`, producing the unfolded rule, or `None` if the
/// unification fails on incompatible constants.
fn resolve_call(
    rule: &Rule,
    pos: usize,
    call: &RuleAtom,
    def: &Rule,
    def_idx: usize,
) -> Option<Rule> {
    // Rename def's variables apart.
    let rename = |v: &str| format!("u{def_idx}_{v}");
    let rn_arg = |a: &ArgTerm| match a {
        ArgTerm::Var(v) => ArgTerm::Var(rename(v)),
        other => other.clone(),
    };

    // Unify call args with def head args, building a substitution on
    // rule variables (both sides) and extra equality comparisons for
    // symbol-vs-symbol pairs.
    let mut subst: HashMap<String, ArgTerm> = HashMap::new();
    let mut extra_cmps: Vec<Comparison> = Vec::new();

    fn walk(a: &ArgTerm, subst: &HashMap<String, ArgTerm>) -> ArgTerm {
        let mut cur = a.clone();
        let mut guard = 0;
        while let ArgTerm::Var(v) = &cur {
            match subst.get(v) {
                Some(next) if next != &cur => {
                    cur = next.clone();
                }
                _ => break,
            }
            guard += 1;
            if guard > 64 {
                break;
            }
        }
        cur
    }

    for (ca, da_raw) in call.args.iter().zip(&def.head.args) {
        let da = rn_arg(da_raw);
        let ca = walk(ca, &subst);
        let da = walk(&da, &subst);
        match (&ca, &da) {
            (ArgTerm::Var(v), other) => {
                if ArgTerm::Var(v.clone()) != *other {
                    subst.insert(v.clone(), other.clone());
                }
            }
            (other, ArgTerm::Var(v)) => {
                subst.insert(v.clone(), other.clone());
            }
            (ArgTerm::Cst(a), ArgTerm::Cst(b)) => {
                if a != b {
                    return None;
                }
            }
            // C-variable vs constant / other c-variable: semantically an
            // equality condition ("unknown constant equals …").
            (l, r) => {
                if l != r {
                    extra_cmps.push(Comparison {
                        lhs: CompExpr::Arg(l.clone()),
                        op: CmpOp::Eq,
                        rhs: CompExpr::Arg(r.clone()),
                    });
                }
            }
        }
    }

    let apply_arg = |a: &ArgTerm| walk(a, &subst);
    let apply_atom = |at: &RuleAtom| RuleAtom {
        pred: at.pred.clone(),
        args: at.args.iter().map(apply_arg).collect(),
    };
    let apply_cmp = |c: &Comparison| Comparison {
        lhs: match &c.lhs {
            CompExpr::Arg(a) => CompExpr::Arg(apply_arg(a)),
            lin => lin.clone(),
        },
        op: c.op,
        rhs: match &c.rhs {
            CompExpr::Arg(a) => CompExpr::Arg(apply_arg(a)),
            lin => lin.clone(),
        },
    };

    let mut body = Vec::new();
    for (i, lit) in rule.body.iter().enumerate() {
        if i == pos {
            // Splice in def's (renamed, substituted) body.
            for dl in &def.body {
                let at = {
                    let renamed = RuleAtom {
                        pred: dl.atom().pred.clone(),
                        args: dl.atom().args.iter().map(&rn_arg).collect(),
                    };
                    apply_atom(&renamed)
                };
                body.push(match dl {
                    Literal::Pos(_) => Literal::Pos(at),
                    Literal::Neg(_) => Literal::Neg(at),
                });
            }
        } else {
            let at = apply_atom(lit.atom());
            body.push(match lit {
                Literal::Pos(_) => Literal::Pos(at),
                Literal::Neg(_) => Literal::Neg(at),
            });
        }
    }
    let mut comparisons: Vec<Comparison> = rule.comparisons.iter().map(&apply_cmp).collect();
    for dc in &def.comparisons {
        let renamed = Comparison {
            lhs: match &dc.lhs {
                CompExpr::Arg(a) => CompExpr::Arg(rn_arg(a)),
                lin => lin.clone(),
            },
            op: dc.op,
            rhs: match &dc.rhs {
                CompExpr::Arg(a) => CompExpr::Arg(rn_arg(a)),
                lin => lin.clone(),
            },
        };
        comparisons.push(apply_cmp(&renamed));
    }
    comparisons.extend(extra_cmps.iter().map(&apply_cmp));

    Some(Rule {
        head: apply_atom(&rule.head),
        body,
        comparisons,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use faure_ctable::Const;

    /// The paper's §5 example: {C_lb, C_s} subsumes T1 (q9 ⊆ q17) but
    /// does not subsume T2.
    fn registry() -> CVarRegistry {
        let mut reg = CVarRegistry::new();
        reg.fresh(
            "x",
            Domain::Consts(vec![
                Const::sym("Mkt"),
                Const::sym("R&D"),
                Const::sym("Other"),
            ]),
        );
        reg.fresh(
            "y",
            Domain::Consts(vec![Const::sym("CS"), Const::sym("GS")]),
        );
        reg.fresh("p", Domain::Ints(vec![80, 344, 7000]));
        reg
    }

    fn t1() -> Program {
        parse_program("panic :- R(Mkt, CS, p), !Fw(Mkt, CS).\n").unwrap()
    }

    fn t2() -> Program {
        parse_program("panic :- R(\"R&D\", y, 7000), !Lb(\"R&D\", y).\n").unwrap()
    }

    fn c_s() -> Program {
        parse_program(
            "panic :- Vs(x, y, p).\n\
             Vs(x, y, p) :- R(x, y, p), !Fw(x, y).\n\
             Vs(x, y, p) :- R(x, y, p), p != 80, p != 344, p != 7000.\n",
        )
        .unwrap()
    }

    fn c_lb() -> Program {
        parse_program(
            "panic :- Vt(x, y, p).\n\
             Vt(x, CS, p) :- R(x, CS, p), x != Mkt, x != \"R&D\".\n\
             Vt(x, CS, p) :- R(x, CS, p), !Lb(x, CS).\n\
             Vt(x, CS, p) :- R(x, CS, p), p != 7000.\n",
        )
        .unwrap()
    }

    #[test]
    fn unfold_resolves_aux_predicates() {
        let rules = unfold_goal_rules(&c_s()).unwrap();
        assert_eq!(rules.len(), 2);
        for r in &rules {
            assert_eq!(r.head.pred, GOAL);
            for lit in &r.body {
                assert_eq!(
                    lit.atom().pred.chars().next().unwrap(),
                    lit.atom().pred.chars().next().unwrap()
                );
                assert!(["R", "Fw"].contains(&lit.atom().pred.as_str()));
            }
        }
    }

    #[test]
    fn cs_subsumes_t1() {
        let mut candidates = c_s();
        candidates.extend(c_lb());
        let verdict = subsumes(&candidates, &t1(), &registry()).unwrap();
        assert_eq!(verdict, Subsumption::Subsumed);
    }

    #[test]
    fn candidates_do_not_subsume_t2() {
        let mut candidates = c_s();
        candidates.extend(c_lb());
        let verdict = subsumes(&candidates, &t2(), &registry()).unwrap();
        assert!(matches!(verdict, Subsumption::NotShown { .. }));
    }

    #[test]
    fn self_subsumption() {
        let t = t1();
        assert_eq!(
            subsumes(&t, &t, &registry()).unwrap(),
            Subsumption::Subsumed
        );
    }

    #[test]
    fn recursion_rejected() {
        let rec = parse_program(
            "panic :- V(x).\n\
             V(x) :- V(x).\n",
        )
        .unwrap();
        assert!(matches!(
            subsumes(&t1(), &rec, &registry()),
            Err(ContainmentError::RecursiveConstraint(_))
        ));
    }

    #[test]
    fn no_goal_rejected() {
        let none = parse_program("V(x) :- R(x).\n").unwrap();
        assert!(matches!(
            subsumes(&t1(), &none, &registry()),
            Err(ContainmentError::NoGoal)
        ));
    }

    #[test]
    fn trivially_unsatisfiable_rule_is_covered() {
        // panic :- R($p), $p = 80, $p != 80 can never fire.
        let target = parse_program("panic :- R($p), $p = 80, $p != 80.\n").unwrap();
        let candidate = parse_program("panic :- Impossible(x).\n").unwrap();
        assert_eq!(
            subsumes(&candidate, &target, &registry()).unwrap(),
            Subsumption::Subsumed
        );
    }
}
